//! The JEN coordinator.
//!
//! Paper §4.1: the coordinator (1) manages workers and their liveness,
//! (2) brokers connections between DB2 workers and JEN workers, (3) fetches
//! table metadata from HCatalog and block locations from the NameNode, and
//! evenly assigns blocks to workers respecting locality.

use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::{BlockId, JenWorkerId};
use hybrid_hdfs::{assign_blocks, AssignmentStats, Catalog, HdfsCluster, TableMeta};
use parking_lot::RwLock;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A per-worker scan plan: the blocks each JEN worker will read.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    pub table: TableMeta,
    /// `blocks[i]` is worker `i`'s share.
    pub blocks: Vec<Vec<BlockId>>,
    pub stats: AssignmentStats,
}

/// The coordinator: registry + metadata brokerage + block assignment.
pub struct JenCoordinator {
    catalog: Arc<RwLock<Catalog>>,
    hdfs: Arc<RwLock<HdfsCluster>>,
    num_workers: usize,
    alive: RwLock<BTreeSet<JenWorkerId>>,
}

impl JenCoordinator {
    pub fn new(
        catalog: Arc<RwLock<Catalog>>,
        hdfs: Arc<RwLock<HdfsCluster>>,
        num_workers: usize,
    ) -> Result<JenCoordinator> {
        if num_workers == 0 {
            return Err(HybridError::config("JEN needs at least one worker"));
        }
        Ok(JenCoordinator {
            catalog,
            hdfs,
            num_workers,
            alive: RwLock::new((0..num_workers).map(JenWorkerId).collect()),
        })
    }

    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// HCatalog lookup (role 3 of §4.1).
    pub fn lookup_table(&self, name: &str) -> Result<TableMeta> {
        self.catalog.read().lookup(name).cloned()
    }

    /// Liveness registry (role 1 of §4.1).
    pub fn alive_workers(&self) -> Vec<JenWorkerId> {
        self.alive.read().iter().copied().collect()
    }

    pub fn mark_dead(&self, w: JenWorkerId) {
        self.alive.write().remove(&w);
    }

    pub fn mark_alive(&self, w: JenWorkerId) {
        if w.index() < self.num_workers {
            self.alive.write().insert(w);
        }
    }

    /// Resolve a table via HCatalog and assign its blocks to the live
    /// workers, locality-aware and balanced (§4.2). Dead workers get empty
    /// shares.
    pub fn plan_scan(&self, table: &str) -> Result<ScanPlan> {
        let meta = self.lookup_table(table)?;
        let blocks = self.hdfs.read().file_blocks(&meta.path)?;
        let live: Vec<JenWorkerId> = self.alive_workers();
        if live.is_empty() {
            return Err(HybridError::exec("no live JEN workers"));
        }
        // Assign over the live workers only, then scatter back to absolute
        // worker slots.
        // `assign_blocks` works with worker index == datanode index; for
        // dead workers we remap their would-be-local blocks like any other.
        let (assignment, stats) = assign_blocks(&blocks, self.num_workers);
        let mut final_assignment: Vec<Vec<BlockId>> = vec![Vec::new(); self.num_workers];
        let live_set: BTreeSet<usize> = live.iter().map(|w| w.index()).collect();
        let mut spill: Vec<BlockId> = Vec::new();
        for (w, ids) in assignment.into_iter().enumerate() {
            if live_set.contains(&w) {
                final_assignment[w] = ids;
            } else {
                spill.extend(ids);
            }
        }
        // redistribute a dead worker's share round-robin over live workers
        for (i, id) in spill.into_iter().enumerate() {
            let w = live[i % live.len()];
            final_assignment[w.index()].push(id);
        }
        Ok(ScanPlan {
            table: meta,
            blocks: final_assignment,
            stats,
        })
    }

    /// Fig. 5: divide the `n` JEN workers into `m` roughly even groups, one
    /// per DB worker, for parallel HDFS→DB data transfer. Works for `m > n`
    /// too (some groups are empty beyond `n`; callers with more DB workers
    /// than JEN workers share by round-robin).
    pub fn group_workers_for_db(&self, num_db_workers: usize) -> Vec<Vec<JenWorkerId>> {
        assert!(num_db_workers > 0);
        let live = self.alive_workers();
        let mut groups: Vec<Vec<JenWorkerId>> = vec![Vec::new(); num_db_workers];
        for (i, w) in live.into_iter().enumerate() {
            groups[i % num_db_workers].push(w);
        }
        groups
    }

    /// The designated worker that merges Bloom filters / partial aggregates
    /// (§4.3: "each worker sends the local results … to a single designated
    /// worker chosen by the coordinator").
    pub fn designated_worker(&self) -> Result<JenWorkerId> {
        self.alive
            .read()
            .iter()
            .next()
            .copied()
            .ok_or_else(|| HybridError::exec("no live JEN workers"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::datum::DataType;
    use hybrid_common::metrics::Metrics;
    use hybrid_common::schema::Schema;
    use hybrid_storage::FileFormat;

    fn setup(blocks: usize, workers: usize) -> JenCoordinator {
        let mut hdfs = HdfsCluster::new(workers, 2.min(workers), Metrics::new()).unwrap();
        hdfs.write_file("/w/L", (0..blocks).map(|i| vec![i as u8; 8]).collect())
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.register(TableMeta {
            name: "L".into(),
            path: "/w/L".into(),
            format: FileFormat::Columnar,
            schema: Schema::from_pairs(&[("joinKey", DataType::I32)]),
        });
        JenCoordinator::new(
            Arc::new(RwLock::new(catalog)),
            Arc::new(RwLock::new(hdfs)),
            workers,
        )
        .unwrap()
    }

    #[test]
    fn plan_scan_covers_all_blocks_evenly() {
        let c = setup(20, 5);
        let plan = c.plan_scan("L").unwrap();
        assert_eq!(plan.blocks.len(), 5);
        let total: usize = plan.blocks.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        assert!(plan.blocks.iter().all(|b| b.len() == 4));
        assert_eq!(plan.table.name, "L");
    }

    #[test]
    fn unknown_table_errors() {
        let c = setup(4, 2);
        assert!(c.plan_scan("NOPE").is_err());
    }

    #[test]
    fn dead_worker_share_is_redistributed() {
        let c = setup(20, 5);
        c.mark_dead(JenWorkerId(2));
        let plan = c.plan_scan("L").unwrap();
        assert!(plan.blocks[2].is_empty());
        let total: usize = plan.blocks.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        assert_eq!(c.alive_workers().len(), 4);
        c.mark_alive(JenWorkerId(2));
        assert_eq!(c.alive_workers().len(), 5);
    }

    #[test]
    fn all_dead_errors() {
        let c = setup(4, 2);
        c.mark_dead(JenWorkerId(0));
        c.mark_dead(JenWorkerId(1));
        assert!(c.plan_scan("L").is_err());
        assert!(c.designated_worker().is_err());
    }

    #[test]
    fn worker_groups_partition_the_workers() {
        let c = setup(4, 10);
        let groups = c.group_workers_for_db(3);
        assert_eq!(groups.len(), 3);
        let mut all: Vec<usize> = groups.iter().flatten().map(|w| w.index()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // roughly even: sizes 4,3,3
        let mut sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn more_db_workers_than_jen_workers() {
        let c = setup(4, 2);
        let groups = c.group_workers_for_db(5);
        let non_empty = groups.iter().filter(|g| !g.is_empty()).count();
        assert_eq!(non_empty, 2);
    }

    #[test]
    fn designated_worker_is_lowest_live() {
        let c = setup(4, 3);
        assert_eq!(c.designated_worker().unwrap(), JenWorkerId(0));
        c.mark_dead(JenWorkerId(0));
        assert_eq!(c.designated_worker().unwrap(), JenWorkerId(1));
    }

    #[test]
    fn zero_workers_rejected() {
        let hdfs = HdfsCluster::new(1, 1, Metrics::new()).unwrap();
        let catalog = Arc::new(RwLock::new(Catalog::new()));
        assert!(JenCoordinator::new(catalog, Arc::new(RwLock::new(hdfs)), 0).is_err());
    }
}
