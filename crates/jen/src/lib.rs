//! JEN — the join execution engine on HDFS (paper §4).
//!
//! JEN is the paper's purpose-built HQP: "a single coordinator and a number
//! of workers, with each worker running on an HDFS DataNode", multi-threaded
//! and pipelined, borrowing parallel-database runtime techniques. This crate
//! reproduces the engine:
//!
//! * [`coordinator::JenCoordinator`] — worker registry, HCatalog lookup,
//!   locality-aware balanced block assignment, and the worker-grouping used
//!   when DB workers pull HDFS data in parallel (Fig. 5: `n` JEN workers are
//!   divided into `m` groups, one per DB worker);
//! * [`worker::JenWorker`] — scan-based processing over HDFS blocks: decode
//!   (with projection pushdown and columnar chunk skipping), local
//!   predicates, database Bloom filter application, and join-key collection
//!   for `BF_H`, all metered;
//! * [`pipeline`] — the Fig. 7 structure: a dedicated read thread pulls raw
//!   blocks off (simulated) disks while the process thread parses, filters
//!   and partitions — reading and processing genuinely overlap;
//! * [`spill`] — the paper's stated future work ("we plan to support
//!   spilling to disk"): a robust dynamic hybrid hash join that keeps
//!   partitions resident while the memory budget allows, evicts them to
//!   temporary files under pressure, and recursively repartitions buckets
//!   that overflow their share.
//!
//! The cross-worker choreography (who shuffles what to whom, and when) is
//! the subject of the paper's join algorithms and lives in `hybrid-core`;
//! this crate supplies the per-worker machinery those algorithms drive.

pub mod coordinator;
pub mod local_join;
pub mod pipeline;
pub mod spill;
pub mod worker;

pub use coordinator::JenCoordinator;
pub use local_join::LocalJoiner;
pub use worker::{JenWorker, ScanSpec, ScanStats};
