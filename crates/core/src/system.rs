//! The hybrid warehouse: both clusters plus the fabric between them.

use hybrid_common::batch::Batch;
use hybrid_common::cache::TableGenerations;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::JenWorkerId;
use hybrid_common::mempool::{BufferPool, QueryBudget};
use hybrid_common::metrics::Metrics;
use hybrid_common::schema::Schema;
use hybrid_common::trace::Tracer;
use hybrid_edw::DbCluster;
use hybrid_hdfs::{Catalog, HdfsCluster, TableMeta};
use hybrid_jen::{JenCoordinator, JenWorker};
use hybrid_net::{Fabric, FaultSpec, Message, RetryPolicy};
use hybrid_storage::{encode, FileFormat};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// How the zigzag join's step 5 obtains `T'` again after `BF_H` arrives
/// (paper §3.4: "we rely on the advanced database optimizer to choose the
/// best strategy: either to materialize the intermediate table … or to
/// utilize indexes to access the original table").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZigzagReaccess {
    /// Keep `T'` materialized from step 1 (no second table access).
    #[default]
    Materialize,
    /// Re-run the predicate scan — an index-only plan when the paper's
    /// covering indexes exist — instead of holding `T'` in memory.
    IndexReaccess,
}

/// Sizing of the two clusters.
///
/// The paper's testbed is 30 DB2 workers (5 servers × 6) and 30 JEN workers
/// (one per DataNode), HDFS replication 2 — [`SystemConfig::paper_shape`]
/// at a reduced worker count is what the experiment harness uses.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    pub db_workers: usize,
    pub jen_workers: usize,
    pub replication: usize,
    /// Rows per HDFS block when loading tables (controls block counts).
    pub rows_per_block: usize,
    /// Deadline for any single fabric receive — a dead peer surfaces as an
    /// error rather than a hang.
    pub recv_timeout: Duration,
    /// Build-side row budget for each JEN worker's local hash join.
    /// `None` reproduces the paper's all-in-memory JEN (§4.4); `Some(n)`
    /// enables the grace-hash spill-to-disk path (the paper's stated
    /// future work) past `n` buffered rows.
    pub jen_memory_limit_rows: Option<usize>,
    /// The zigzag join's step-5 strategy (§3.4).
    pub zigzag_reaccess: ZigzagReaccess,
    /// Compute-thread budget for the execution driver. `1` replays each
    /// algorithm in the exact sequential step order; `> 1` runs every
    /// worker on its own OS thread with at most `threads` of them inside a
    /// compute section at once. Defaults from the `HYBRID_THREADS` env var
    /// (the CI correctness matrix drives it), falling back to 1.
    pub threads: usize,
    /// Per-endpoint fabric inbox bound used when `threads > 1` (sequential
    /// runs stay unbounded — a single-threaded driver would deadlock on a
    /// full inbox with nobody draining). `None` = unbounded.
    pub channel_capacity: Option<usize>,
    /// Seeded chaos plan: inject drops/delays/duplicates/reorders into the
    /// fabric and kills/stragglers into the driver. `None` (the default)
    /// is the fault-free fast path. Sessions inherit the plan; the session
    /// namespace is part of every decision hash, so a query retried in a
    /// fresh namespace rolls fresh faults.
    pub fault_spec: Option<FaultSpec>,
    /// Retry budget for fabric sends whose attempts the chaos plan drops.
    pub retry: RetryPolicy,
    /// Salt fan-out for skew-aware shuffles: `Some(f)` lets the
    /// repartition-family joins split each detected heavy-hitter build key
    /// across `f` workers and replicate its probe tuples to them (see
    /// [`crate::skew::SaltRouter`]). `None` (the default) keeps the plain
    /// agreed-hash route. Results are bit-identical either way.
    pub salt_buckets: Option<usize>,
    /// Rows per fabric data message: every data stream is framed into
    /// batches of at most this many rows. The default
    /// ([`DEFAULT_BATCH_ROWS`]) preserves the framing every committed
    /// baseline was blessed under; `1` degrades the fabric to exact
    /// one-tuple-at-a-time messages (the sequential tuple replay the
    /// differential harness compares against). Routing is batch-size
    /// independent, so results and row-level metric totals are identical
    /// at every setting — only message counts (and with them byte totals,
    /// which include the per-message frame header) vary. Defaults from the
    /// `HYBRID_BATCH_ROWS` env var, falling back to [`DEFAULT_BATCH_ROWS`].
    pub batch_rows: usize,
    /// Total byte budget for the system's shared
    /// [`BufferPool`]. `None` (the
    /// default) is unbounded — the paper's all-in-memory JEN, and exactly
    /// the pre-governor behavior (no `mem.*` counters are recorded).
    /// `Some(bytes)` bounds the build-side residency of every query:
    /// direct runs reserve the whole pool, the query service splits it
    /// across admitted queries, and each query splits its share statically
    /// across its JEN workers — workers evict partitions past their share
    /// (hybrid hash join) instead of failing. Defaults from the
    /// `HYBRID_MEM_BUDGET` env var (integer bytes with an optional
    /// `k`/`m`/`g` suffix; unset or `unbounded` = `None`).
    pub mem_budget_bytes: Option<u64>,
    /// Divergence ratio that arms the mid-query replan controller
    /// ([`crate::adapt`]). `None` (the default) disables adaptation
    /// entirely — every run is byte-identical to the pre-adaptive system.
    /// `Some(r)` (must be `> 1.0`) compares observed cardinalities,
    /// selectivities, and shuffle skew against the advisor's
    /// `QueryEstimates` at phase boundaries; when the worst estimate is
    /// off by more than a factor of `r`, the controller re-costs the
    /// remaining work and may abandon the running plan for a cheaper one.
    /// Defaults from the `HYBRID_REPLAN_THRESHOLD` env var (a float, or
    /// `off`/unset = `None`).
    pub replan_threshold: Option<f64>,
}

/// Default fabric batch size (rows per data message).
pub const DEFAULT_BATCH_ROWS: usize = 4096;

/// `HYBRID_THREADS` env override, or 1 (sequential) when unset/invalid.
pub fn threads_from_env() -> usize {
    std::env::var("HYBRID_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// `HYBRID_BATCH_ROWS` env override, or [`DEFAULT_BATCH_ROWS`] when
/// unset/invalid.
pub fn batch_rows_from_env() -> usize {
    std::env::var("HYBRID_BATCH_ROWS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_BATCH_ROWS)
}

/// Parse a byte budget: an integer with an optional `k`/`m`/`g` suffix
/// (powers of 1024). `"unbounded"`, empty, or unparsable → `None`.
pub fn parse_mem_budget(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    if s.is_empty() || s == "unbounded" {
        return None;
    }
    let (digits, shift) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match s.as_bytes()[s.len() - 1] {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            },
        ),
        None => (s.as_str(), 0),
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_shl(shift))
}

/// `HYBRID_MEM_BUDGET` env override, or `None` (unbounded) when
/// unset/`unbounded`/invalid.
pub fn mem_budget_from_env() -> Option<u64> {
    std::env::var("HYBRID_MEM_BUDGET")
        .ok()
        .and_then(|v| parse_mem_budget(&v))
}

/// Parse a replan divergence threshold: a finite float `> 1.0` (an estimate
/// off by less than its own value is never "divergent"). Empty, `"off"`, or
/// unparsable → `None` (adaptation disabled).
pub fn parse_replan_threshold(s: &str) -> Option<f64> {
    let s = s.trim().to_ascii_lowercase();
    if s.is_empty() || s == "off" {
        return None;
    }
    s.parse::<f64>().ok().filter(|r| r.is_finite() && *r > 1.0)
}

/// `HYBRID_REPLAN_THRESHOLD` env override, or `None` (adaptation off) when
/// unset/`off`/invalid.
pub fn replan_threshold_from_env() -> Option<f64> {
    std::env::var("HYBRID_REPLAN_THRESHOLD")
        .ok()
        .and_then(|v| parse_replan_threshold(&v))
}

impl SystemConfig {
    /// A scaled-down version of the paper's 30+30 testbed.
    pub fn paper_shape(db_workers: usize, jen_workers: usize) -> SystemConfig {
        SystemConfig {
            db_workers,
            jen_workers,
            replication: 2.min(jen_workers),
            rows_per_block: 8192,
            recv_timeout: Duration::from_secs(30),
            jen_memory_limit_rows: None,
            zigzag_reaccess: ZigzagReaccess::default(),
            threads: threads_from_env(),
            channel_capacity: Some(256),
            fault_spec: None,
            retry: RetryPolicy::default(),
            salt_buckets: None,
            batch_rows: batch_rows_from_env(),
            mem_budget_bytes: mem_budget_from_env(),
            replan_threshold: replan_threshold_from_env(),
        }
    }

    pub fn validate(&self) -> Result<()> {
        if self.db_workers == 0 || self.jen_workers == 0 {
            return Err(HybridError::config(
                "both clusters need at least one worker",
            ));
        }
        if self.rows_per_block == 0 {
            return Err(HybridError::config("rows_per_block must be positive"));
        }
        if self.threads == 0 {
            return Err(HybridError::config("threads must be at least 1"));
        }
        if self.channel_capacity == Some(0) {
            return Err(HybridError::config("channel_capacity must be positive"));
        }
        if let Some(spec) = &self.fault_spec {
            spec.validate().map_err(HybridError::config)?;
        }
        if self.retry.attempts == 0 {
            return Err(HybridError::config("retry.attempts must be at least 1"));
        }
        if let Some(f) = self.salt_buckets {
            if f < 2 {
                return Err(HybridError::config(
                    "salt_buckets must be at least 2 (1 salt bucket is the plain route)",
                ));
            }
        }
        if self.batch_rows == 0 {
            return Err(HybridError::config("batch_rows must be at least 1"));
        }
        if self.mem_budget_bytes == Some(0) {
            return Err(HybridError::config(
                "mem_budget_bytes must be positive (use None for unbounded)",
            ));
        }
        if let Some(r) = self.replan_threshold {
            if !r.is_finite() || r <= 1.0 {
                return Err(HybridError::config(
                    "replan_threshold must be a finite ratio > 1.0 (use None for off)",
                ));
            }
        }
        Ok(())
    }
}

/// Everything a join algorithm needs: the EDW, HDFS + JEN, and the fabric.
pub struct HybridSystem {
    pub db: DbCluster,
    pub hdfs: Arc<RwLock<HdfsCluster>>,
    pub catalog: Arc<RwLock<Catalog>>,
    pub coordinator: JenCoordinator,
    pub jen_workers: Vec<JenWorker>,
    pub fabric: Fabric<Message>,
    pub metrics: Metrics,
    /// Shared phase recorder: every worker's spans land on one clock.
    pub tracer: Tracer,
    pub config: SystemConfig,
    /// Cross-query `BF_DB` cache, shared by every session of this system.
    /// `None` (the default) keeps single-query behavior: every run builds
    /// its filter from the table. [`HybridSystem::enable_bloom_cache`]
    /// turns it on; the query service does so at construction.
    pub bloom_cache: Option<crate::cache::BloomCache>,
    /// Per-table load generations, shared by every session. Bumped by the
    /// load methods after the new data is visible; cross-query caches
    /// snapshot a generation before reading a table and drop inserts whose
    /// generation went stale (a rewrite landed mid-execution), so an
    /// in-flight query can never repopulate a just-invalidated cache with
    /// pre-rewrite artifacts.
    pub table_gens: TableGenerations,
    /// The shared memory governor, sized by `config.mem_budget_bytes`.
    /// Sessions share the root's pool (its `mem.reservations` /
    /// `mem.pool_high_water` counters land in the **root** registry), so
    /// concurrent queries draw from one fixed total.
    pub mem_pool: BufferPool,
    /// This system's slice of the pool for the query it is running.
    /// `None` until granted: the service reserves a share at admission and
    /// injects it into each attempt's session; a direct [`crate::run`]
    /// reserves everything the pool has left on first use.
    pub query_budget: Option<QueryBudget>,
}

impl HybridSystem {
    pub fn new(config: SystemConfig) -> Result<HybridSystem> {
        config.validate()?;
        let metrics = Metrics::new();
        let db = DbCluster::new(config.db_workers, metrics.clone())?;
        let hdfs = Arc::new(RwLock::new(HdfsCluster::new(
            config.jen_workers,
            config.replication,
            metrics.clone(),
        )?));
        let catalog = Arc::new(RwLock::new(Catalog::new()));
        let coordinator =
            JenCoordinator::new(Arc::clone(&catalog), Arc::clone(&hdfs), config.jen_workers)?;
        let tracer = Tracer::new();
        let jen_workers = (0..config.jen_workers)
            .map(|i| {
                JenWorker::with_tracer(
                    JenWorkerId(i),
                    Arc::clone(&hdfs),
                    metrics.clone(),
                    tracer.clone(),
                )
            })
            .collect();
        // Bounded inboxes only make sense with concurrent workers draining
        // them; a sequential driver fills its own target and deadlocks.
        let capacity = if config.threads > 1 {
            config.channel_capacity
        } else {
            None
        };
        let fabric = Fabric::with_options(
            config.db_workers,
            config.jen_workers,
            metrics.clone(),
            capacity,
            config.fault_spec.clone(),
            config.retry.clone(),
        );
        let mem_pool = BufferPool::new(config.mem_budget_bytes, metrics.clone());
        Ok(HybridSystem {
            db,
            hdfs,
            catalog,
            coordinator,
            jen_workers,
            fabric,
            metrics,
            tracer,
            mem_pool,
            config,
            bloom_cache: None,
            table_gens: TableGenerations::new(),
            query_budget: None,
        })
    }

    /// Turn on the cross-query `BF_DB` cache (counters land under
    /// `svc.cache.bloom.*` in this system's root registry). Capacity 0
    /// disables it again without removing the plumbing.
    pub fn enable_bloom_cache(&mut self, capacity: usize) {
        self.bloom_cache = Some(crate::cache::BloomCache::new(
            capacity,
            self.metrics.clone(),
            self.table_gens.clone(),
        ));
    }

    /// A per-query *session* over this system: shares the loaded data (DB
    /// partitions, indexes, HDFS blocks, catalog) and the physical fabric,
    /// but owns a fresh metrics registry, a fresh tracer, and a private
    /// fabric namespace — so any number of sessions can execute
    /// concurrently without interleaving counters, spans, or shuffle
    /// streams. The Bloom cache is shared (it is cross-query by design).
    ///
    /// `ns` must be unique among live sessions (the service hands out a
    /// monotone counter). Call [`HybridSystem::close_session`] on the
    /// returned system when the query finishes, or its fabric inboxes stay
    /// registered forever.
    ///
    /// Fabric traffic of a session is metered into both the session's
    /// registry and the root registry, so the root's `net.cross.*` /
    /// `net.intra_hdfs.*` totals remain the exact sum over all sessions.
    /// Purely local work (DB scans, intra-DB exchanges, HDFS reads, JEN
    /// operators) is metered into the session registry only.
    /// Build-side memory each JEN worker would get for a query run on this
    /// system, for the advisor's spill term: the granted budget's share if
    /// one was already reserved, otherwise what is left in the pool
    /// (what a direct [`crate::run`] would reserve). `None` = unbounded.
    pub fn mem_budget_per_worker(&self) -> Option<u64> {
        let n = self.config.jen_workers.max(1) as u64;
        match &self.query_budget {
            Some(q) => q.cap_bytes().map(|c| c / n),
            None => self
                .mem_pool
                .total()
                .map(|t| t.saturating_sub(self.mem_pool.reserved()) / n),
        }
    }

    pub fn session(&self, ns: u64) -> Result<HybridSystem> {
        let metrics = Metrics::new();
        let tracer = Tracer::new();
        let fabric = self.fabric.namespace(ns, metrics.clone())?;
        let db = self.db.session(metrics.clone());
        let coordinator = JenCoordinator::new(
            Arc::clone(&self.catalog),
            Arc::clone(&self.hdfs),
            self.config.jen_workers,
        )?;
        let jen_workers = (0..self.config.jen_workers)
            .map(|i| {
                JenWorker::with_tracer(
                    JenWorkerId(i),
                    Arc::clone(&self.hdfs),
                    metrics.clone(),
                    tracer.clone(),
                )
            })
            .collect();
        Ok(HybridSystem {
            db,
            hdfs: Arc::clone(&self.hdfs),
            catalog: Arc::clone(&self.catalog),
            coordinator,
            jen_workers,
            fabric,
            metrics,
            tracer,
            config: self.config.clone(),
            bloom_cache: self.bloom_cache.clone(),
            table_gens: self.table_gens.clone(),
            mem_pool: self.mem_pool.clone(),
            query_budget: None,
        })
    }

    /// Release a session's fabric namespace (undelivered messages die with
    /// it). No-op on the root system.
    pub fn close_session(&self) {
        self.fabric.remove_namespace();
    }

    /// Load `data` into the parallel database as table `name`, distributed
    /// on `dist_col` (the paper distributes `T` on `uniqKey`).
    pub fn load_db_table(&mut self, name: &str, dist_col: usize, data: Batch) -> Result<()> {
        self.db.load_table(name, dist_col, data)?;
        // Rewriting a table makes every cached filter over it stale. The
        // generation bump must come after the data swap and before the
        // invalidation: an in-flight build that read pre-rewrite data then
        // either inserts before this invalidation (removed here) or sees
        // the bumped generation at insert time (dropped there).
        self.table_gens.bump(name);
        if let Some(cache) = &self.bloom_cache {
            cache.invalidate_table(name);
        }
        Ok(())
    }

    /// Build a covering index on the database table (e.g. the paper's
    /// `(corPred, indPred, joinKey)` index for index-only Bloom builds).
    pub fn create_db_index(&mut self, table: &str, base_cols: &[usize]) -> Result<()> {
        self.db.create_index(table, base_cols)
    }

    /// Load `data` onto HDFS as table `name` in the given format, split into
    /// blocks of `config.rows_per_block` rows, and register it in the
    /// catalog.
    pub fn load_hdfs_table(
        &mut self,
        name: &str,
        format: FileFormat,
        schema: Schema,
        data: &Batch,
    ) -> Result<()> {
        if data.schema() != &schema {
            return Err(HybridError::SchemaMismatch(
                "HDFS table data does not match declared schema".into(),
            ));
        }
        let path = format!("/warehouse/{name}");
        let blocks: Vec<Vec<u8>> = data
            .chunks(self.config.rows_per_block)
            .iter()
            .map(|chunk| encode(format, chunk))
            .collect();
        self.hdfs.write().write_file(&path, blocks)?;
        self.catalog.write().register(TableMeta {
            name: name.to_string(),
            path,
            format,
            schema,
        });
        self.table_gens.bump(name);
        Ok(())
    }

    /// Reset all counters (between experiment runs).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("joinKey", DataType::I32), ("v", DataType::I64)])
    }

    fn data(n: usize) -> Batch {
        Batch::new(
            schema(),
            vec![
                Column::I32((0..n as i32).collect()),
                Column::I64((0..n as i64).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construct_and_load() {
        let mut sys = HybridSystem::new(SystemConfig::paper_shape(3, 4)).unwrap();
        sys.load_db_table("T", 0, data(100)).unwrap();
        sys.load_hdfs_table("L", FileFormat::Columnar, schema(), &data(300))
            .unwrap();
        let plan = sys.coordinator.plan_scan("L").unwrap();
        let total: usize = plan.blocks.iter().map(Vec::len).sum();
        assert!(total >= 1);
        assert_eq!(sys.coordinator.lookup_table("L").unwrap().name, "L");
    }

    #[test]
    fn block_count_follows_rows_per_block() {
        let mut cfg = SystemConfig::paper_shape(2, 3);
        cfg.rows_per_block = 64;
        let mut sys = HybridSystem::new(cfg).unwrap();
        sys.load_hdfs_table("L", FileFormat::Text, schema(), &data(300))
            .unwrap();
        let blocks = sys.hdfs.read().file_blocks("/warehouse/L").unwrap();
        assert_eq!(blocks.len(), 5); // ceil(300/64)
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut sys = HybridSystem::new(SystemConfig::paper_shape(1, 1)).unwrap();
        let wrong = Schema::from_pairs(&[("x", DataType::I64)]);
        assert!(sys
            .load_hdfs_table("L", FileFormat::Text, wrong, &data(10))
            .is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(HybridSystem::new(SystemConfig::paper_shape(0, 3)).is_err());
        assert!(HybridSystem::new(SystemConfig::paper_shape(3, 0)).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.rows_per_block = 0;
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.threads = 0;
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.channel_capacity = Some(0);
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.salt_buckets = Some(1);
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(2, 2);
        cfg.salt_buckets = Some(2);
        assert!(HybridSystem::new(cfg).is_ok());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.batch_rows = 0;
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.batch_rows = 1;
        assert!(HybridSystem::new(cfg).is_ok());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.mem_budget_bytes = Some(0);
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.mem_budget_bytes = Some(1 << 20);
        assert!(HybridSystem::new(cfg).is_ok());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.replan_threshold = Some(1.0);
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.replan_threshold = Some(f64::NAN);
        assert!(HybridSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.replan_threshold = Some(1.5);
        assert!(HybridSystem::new(cfg).is_ok());
    }

    #[test]
    fn replan_threshold_parsing() {
        assert_eq!(parse_replan_threshold("off"), None);
        assert_eq!(parse_replan_threshold(""), None);
        assert_eq!(parse_replan_threshold("nonsense"), None);
        assert_eq!(parse_replan_threshold("1.0"), None); // not > 1
        assert_eq!(parse_replan_threshold("0.5"), None);
        assert_eq!(parse_replan_threshold("inf"), None);
        assert_eq!(parse_replan_threshold("1.5"), Some(1.5));
        assert_eq!(parse_replan_threshold(" 2 "), Some(2.0));
        assert_eq!(parse_replan_threshold("OFF"), None);
    }

    #[test]
    fn mem_budget_parsing() {
        assert_eq!(parse_mem_budget("unbounded"), None);
        assert_eq!(parse_mem_budget(""), None);
        assert_eq!(parse_mem_budget("nonsense"), None);
        assert_eq!(parse_mem_budget("4096"), Some(4096));
        assert_eq!(parse_mem_budget("64k"), Some(64 << 10));
        assert_eq!(parse_mem_budget("2M"), Some(2 << 20));
        assert_eq!(parse_mem_budget("1g"), Some(1 << 30));
        assert_eq!(parse_mem_budget(" 8 k "), Some(8 << 10));
    }

    #[test]
    fn fabric_bounded_only_when_parallel() {
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.threads = 1;
        assert_eq!(HybridSystem::new(cfg).unwrap().fabric.capacity(), None);
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.threads = 4;
        assert_eq!(HybridSystem::new(cfg).unwrap().fabric.capacity(), Some(256));
    }
}
