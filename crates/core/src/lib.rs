//! Joins for hybrid warehouses — the paper's primary contribution.
//!
//! This crate implements the five join strategies of *"Joins for Hybrid
//! Warehouses: Exploiting Massive Parallelism in Hadoop and Enterprise Data
//! Warehouses"* (EDBT 2015) over the substrate crates:
//!
//! | algorithm | paper | where the join runs |
//! |---|---|---|
//! | [`JoinAlgorithm::DbSide`] (± Bloom) | §3.1, Fig. 1 | database |
//! | [`JoinAlgorithm::Broadcast`] | §3.2, Fig. 2 | HDFS (JEN) |
//! | [`JoinAlgorithm::Repartition`] (± Bloom) | §3.3, Fig. 3 | HDFS (JEN) |
//! | [`JoinAlgorithm::Zigzag`] | §3.4, Fig. 4 | HDFS (JEN) |
//! | [`JoinAlgorithm::SemiJoin`] | §6 baseline | HDFS (JEN) |
//!
//! A [`system::HybridSystem`] wires together the parallel database
//! (`hybrid-edw`), the HDFS cluster (`hybrid-hdfs`), the JEN engine
//! (`hybrid-jen`) and the metered fabric (`hybrid-net`). A query is a
//! [`query::HybridQuery`] — local predicates on both tables, an equi-join,
//! a post-join predicate, and a group-by/aggregate — exactly the shape of
//! the paper's workload (§2, §5). [`algorithms::run`] executes any strategy
//! and returns the result **plus** a [`stats::JoinSummary`] with the
//! tuple/byte movement counters that reproduce Table 1 and feed the cost
//! model.
//!
//! All strategies compute identical results; the integration tests verify
//! every algorithm against [`reference::run_reference`], a single-node
//! evaluation of the same query.

pub mod adapt;
pub mod advisor;
pub mod algorithms;
pub mod cache;
pub mod estimation;
pub mod multiway;
pub mod query;
pub mod reference;
pub mod skew;
pub mod stats;
pub mod system;

pub use adapt::{run_adaptive, Observation, ReplanController, REPLAN_HYSTERESIS, REPLAN_NS_OFFSET};
pub use advisor::{
    advise, advise_multiway, best_cascade, best_hypercube, estimated_costs, CascadeStep,
    DimEstimates, MultiwayChoice, MultiwayPlan, QueryEstimates, StarEstimates,
};
pub use algorithms::{run, CancelToken, Driver, JoinAlgorithm, TaskSet};
pub use cache::{query_fingerprint, BloomCache, BloomKey};
pub use estimation::{run_auto, sample_star_stats, sample_stats, SampledStats};
pub use hybrid_net::{FaultSpec, FaultTarget, RetryPolicy};
pub use multiway::{run_star, DimQuery, MultiwayPlanner, StarQuery, MAX_STAR_DIMENSIONS};
pub use query::HybridQuery;
pub use reference::{batch_checksum, run_star_reference};
pub use skew::{SaltCursors, SaltRouter};
pub use stats::{JoinSummary, RunOutput};
pub use system::{
    batch_rows_from_env, mem_budget_from_env, parse_mem_budget, parse_replan_threshold,
    replan_threshold_from_env, threads_from_env, HybridSystem, SystemConfig, ZigzagReaccess,
    DEFAULT_BATCH_ROWS,
};
