//! Per-run statistics: the counters behind Table 1 and the cost model.

use hybrid_common::batch::Batch;
use hybrid_common::metrics::MetricsSnapshot;
use hybrid_common::trace::Timeline;

/// Digest of one join run's data movement and scan work, extracted from the
/// metrics registry after the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinSummary {
    // --- Table 1 counters ---
    /// HDFS tuples shuffled between JEN workers (repartition/zigzag).
    pub hdfs_tuples_shuffled: u64,
    /// Database tuples shipped across the inter-cluster switch.
    pub db_tuples_sent: u64,
    /// HDFS tuples shipped across the switch (DB-side join ingestion).
    pub hdfs_tuples_sent: u64,
    // --- per-stream byte volumes (feed the cost model) ---
    /// Bytes of filtered HDFS tuples shuffled between JEN workers.
    pub hdfs_shuffle_bytes: u64,
    /// Bytes of database tuples crossing the switch (T' / T'').
    pub cross_db_data_bytes: u64,
    /// Bytes of HDFS tuples crossing the switch (DB-side ingestion).
    pub cross_hdfs_data_bytes: u64,
    /// Bloom filter bytes crossing the switch (both directions).
    pub bloom_cross_bytes: u64,
    /// Exact-key-set bytes (semi-join baseline).
    pub keyset_cross_bytes: u64,
    /// Database tuples on the `db_data` stream only (excludes key streams).
    pub db_data_tuples: u64,
    /// PERF join: ordered T' keys shipped (tuples / bytes) and positional
    /// bitmap reply bytes.
    pub perf_keys_tuples: u64,
    pub perf_keys_cross_bytes: u64,
    pub perf_bitmap_cross_bytes: u64,
    // --- message counts ---
    /// Fabric messages across all link classes (every `send` is one
    /// message, so a `Data` message carries one batch). Row totals above
    /// are batch-size-invariant; this count shrinks ~1/batch_rows as
    /// batches grow — it is the volume the cost model's per-message
    /// overhead term charges.
    pub fabric_msgs: u64,
    // --- bytes per link class ---
    pub cross_bytes: u64,
    pub cross_db_to_jen_bytes: u64,
    pub cross_jen_to_db_bytes: u64,
    pub intra_hdfs_bytes: u64,
    pub intra_db_bytes: u64,
    // --- scan work ---
    pub hdfs_bytes_scanned: u64,
    pub hdfs_rows_raw: u64,
    pub hdfs_rows_after_pred: u64,
    pub hdfs_rows_after_bloom: u64,
    pub hdfs_blocks_skipped: u64,
    pub db_rows_scanned: u64,
    pub db_index_rows: u64,
    pub db_scan_bytes: u64,
    pub db_index_bytes: u64,
    /// Rows of `T'` (after local predicates + projection), counted once.
    pub t_prime_rows: u64,
    // --- bloom work ---
    pub bloom_keys_inserted: u64,
    // --- shuffle balance ---
    /// Max JEN worker build-side shuffle load over the mean, ×1000
    /// (1000 = perfectly balanced; 0 = the algorithm has no shuffle).
    pub shuffle_max_over_mean_x1000: u64,
    // --- memory governor ---
    /// Bytes written to local spill runs (partition evictions plus
    /// recursive repartitioning; 0 = the build side stayed resident).
    pub spill_bytes_written: u64,
    /// Bytes read back from local spill runs at join time.
    pub spill_bytes_read: u64,
    /// High-water mark of resident build bytes on any single JEN worker
    /// (`mem.high_water`; 0 when the run had no memory budget).
    pub mem_high_water: u64,
}

impl JoinSummary {
    /// Extract a summary from a metrics snapshot taken after a run that
    /// started from reset counters.
    pub fn from_snapshot(s: &MetricsSnapshot) -> JoinSummary {
        let get = |k: &str| s.get(k).copied().unwrap_or(0);
        JoinSummary {
            hdfs_tuples_shuffled: get("net.intra_hdfs.stream.hdfs_shuffle.tuples"),
            db_tuples_sent: get("net.cross.db_to_jen.tuples"),
            hdfs_tuples_sent: get("net.cross.jen_to_db.tuples"),
            hdfs_shuffle_bytes: get("net.intra_hdfs.stream.hdfs_shuffle.bytes"),
            cross_db_data_bytes: get("net.cross.stream.db_data.bytes"),
            cross_hdfs_data_bytes: get("net.cross.stream.hdfs_data.bytes"),
            bloom_cross_bytes: get("net.cross.stream.db_bloom.bytes")
                + get("net.cross.stream.hdfs_bloom.bytes"),
            keyset_cross_bytes: get("net.cross.stream.db_keyset.bytes"),
            db_data_tuples: get("net.cross.stream.db_data.tuples"),
            perf_keys_tuples: get("net.cross.stream.perf_keys.tuples"),
            perf_keys_cross_bytes: get("net.cross.stream.perf_keys.bytes"),
            perf_bitmap_cross_bytes: get("net.cross.stream.perf_bitmap.bytes"),
            fabric_msgs: get("net.intra_hdfs.msgs")
                + get("net.cross.msgs")
                + get("net.intra_db.msgs"),
            cross_bytes: get("net.cross.bytes"),
            cross_db_to_jen_bytes: get("net.cross.db_to_jen.bytes"),
            cross_jen_to_db_bytes: get("net.cross.jen_to_db.bytes"),
            intra_hdfs_bytes: get("net.intra_hdfs.bytes"),
            intra_db_bytes: get("net.intra_db.bytes"),
            hdfs_bytes_scanned: get("jen.scan.bytes_read"),
            hdfs_rows_raw: get("jen.scan.rows_raw"),
            hdfs_rows_after_pred: get("jen.scan.rows_after_pred"),
            hdfs_rows_after_bloom: get("jen.scan.rows_after_bloom"),
            hdfs_blocks_skipped: get("jen.scan.blocks_skipped"),
            db_rows_scanned: get("db.scan.rows"),
            db_index_rows: get("db.index.rows"),
            db_scan_bytes: get("db.scan.bytes"),
            db_index_bytes: get("db.index.bytes"),
            t_prime_rows: get("core.t_prime_rows"),
            bloom_keys_inserted: get("db.bloom.keys_inserted") + get("jen.bloom.keys_inserted"),
            shuffle_max_over_mean_x1000: get("net.shuffle.max_over_mean_x1000"),
            spill_bytes_written: get("jen.spill.bytes_written"),
            spill_bytes_read: get("jen.spill.bytes_read"),
            mem_high_water: get("mem.high_water"),
        }
    }
}

/// The outcome of one algorithm run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Final `(group, agg…)` batch, sorted by group key.
    pub result: Batch,
    /// Movement/scan digest for the run.
    pub summary: JoinSummary,
    /// Raw metric counters (diagnostics, cost-model input).
    pub snapshot: MetricsSnapshot,
    /// Phase spans of the run (Fig. 7 view), with per-link `net.*` totals.
    pub timeline: Timeline,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn snapshot_extraction_defaults_to_zero() {
        let s: MetricsSnapshot = BTreeMap::new();
        let j = JoinSummary::from_snapshot(&s);
        assert_eq!(j, JoinSummary::default());
    }

    #[test]
    fn snapshot_extraction_reads_counters() {
        let mut s: MetricsSnapshot = BTreeMap::new();
        s.insert("net.intra_hdfs.stream.hdfs_shuffle.tuples".into(), 591);
        s.insert("net.cross.db_to_jen.tuples".into(), 30);
        s.insert("jen.scan.bytes_read".into(), 421);
        s.insert("db.bloom.keys_inserted".into(), 5);
        s.insert("jen.bloom.keys_inserted".into(), 7);
        s.insert("net.intra_hdfs.msgs".into(), 100);
        s.insert("net.cross.msgs".into(), 40);
        s.insert("net.intra_db.msgs".into(), 2);
        let j = JoinSummary::from_snapshot(&s);
        assert_eq!(j.hdfs_tuples_shuffled, 591);
        assert_eq!(j.db_tuples_sent, 30);
        assert_eq!(j.hdfs_bytes_scanned, 421);
        assert_eq!(j.bloom_keys_inserted, 12);
        assert_eq!(j.fabric_msgs, 142);
    }
}
