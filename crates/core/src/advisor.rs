//! Algorithm advisor — the decision rules of the paper's discussion (§5.5).
//!
//! "Broadcast join only works for very limited cases … the DB-side join
//! works well only when the HDFS table after predicates and projection is
//! relatively small … for a large HDFS table without highly selective
//! predicates, zigzag join is the most reliable join method."
//!
//! The advisor turns those findings into a transfer-volume estimate per
//! algorithm and picks the cheapest. Scan cost is excluded: every strategy
//! scans `L` exactly once, so transfers are what separates them — precisely
//! the quantity the paper's Bloom filters attack.

use crate::algorithms::JoinAlgorithm;

/// Pre-execution estimates about one query (from catalog statistics in a
/// real system; the experiment harness derives them from the generator's
/// spec).
#[derive(Debug, Clone, Copy)]
pub struct QueryEstimates {
    /// Bytes of the database table after local predicates + projection.
    pub t_prime_bytes: u64,
    /// Bytes of the HDFS table after local predicates + projection.
    pub l_prime_bytes: u64,
    /// Join-key selectivity on `T'` (fraction of `T'` join keys that appear
    /// in `L'` — `S_T'` in the paper). 1.0 when unknown.
    pub st: f64,
    /// Join-key selectivity on `L'` (`S_L'`). 1.0 when unknown.
    pub sl: f64,
    /// JEN worker count (broadcast fan-out).
    pub num_jen_workers: usize,
    /// Wire size of one Bloom filter.
    pub bloom_bytes: u64,
    /// Estimated shuffle imbalance: max JEN worker's share of the `L'`
    /// shuffle over the mean (1.0 = uniform keys, `num_jen_workers` =
    /// a single hot key). The straggler bounds every pipelined shuffle
    /// phase, so shuffle-based strategies scale with it; broadcast (which
    /// replicates `T'` everywhere and keeps `L` local) is immune.
    pub shuffle_skew: f64,
    /// Build-side memory budget *per JEN worker*, bytes (`None` =
    /// unbounded). When a strategy's per-worker hash build exceeds it, the
    /// hybrid hash join evicts the excess to local spill runs and re-reads
    /// it at probe time — a real cost the advisor must charge, so a tight
    /// budget can flip the advice toward a plan that builds less (or not
    /// at all) on the JEN side.
    pub mem_budget_per_worker: Option<u64>,
}

/// Relative cost of an intra-HDFS byte vs a cross-cluster byte. The paper's
/// testbed has 30 × 1 GbE inside the HDFS cluster vs a 20 Gbit switch
/// between clusters — aggregate intra bandwidth is moderately higher.
const INTRA_WEIGHT: f64 = 0.7;

/// Per-byte penalty for data *leaving* the database: the paper exports
/// tuples through C UDFs writing to sockets row by row — far more expensive
/// than raw link bandwidth (this is why zigzag's `T''` reduction matters).
const DB_EXPORT_WEIGHT: f64 = 3.0;

/// Per-byte penalty for data *entering* the database through the
/// `read_hdfs` table UDF (the steep σL slope of the DB-side joins).
const DB_INGEST_WEIGHT: f64 = 2.0;

/// Per-byte weight of local spill traffic. Spill runs live on the JEN
/// workers' local disks — cheaper per byte than a cross-cluster transfer —
/// but every evicted byte makes a round trip (written once, read back
/// once), which [`spill_penalty`] charges explicitly.
const SPILL_WEIGHT: f64 = 0.6;

/// Extra byte-equivalents a JEN-build strategy pays under a memory budget.
///
/// With per-worker build volume `build_pw` over a budget `b`, the hybrid
/// hash join keeps `b` bytes resident and spills the excess; the probe
/// slices that hash to evicted partitions make the same disk round trip.
/// `None` (or a build that fits) costs nothing, so budget-free advice is
/// byte-identical to the pre-governor advisor.
fn spill_penalty(budget: Option<u64>, build_pw: f64, probe_pw: f64, n: f64) -> f64 {
    let Some(b) = budget else { return 0.0 };
    let excess = build_pw - b as f64;
    if excess <= 0.0 || build_pw <= 0.0 {
        return 0.0;
    }
    let evicted_fraction = excess / build_pw;
    SPILL_WEIGHT * n * 2.0 * (excess + probe_pw * evicted_fraction)
}

/// Estimated transfer cost (in cross-cluster byte-equivalents) of each
/// strategy.
pub fn estimated_costs(est: &QueryEstimates) -> Vec<(JoinAlgorithm, f64)> {
    let t = est.t_prime_bytes as f64;
    let l = est.l_prime_bytes as f64;
    let bf = est.bloom_bytes as f64;
    let n = est.num_jen_workers as f64;
    let st = est.st.clamp(0.0, 1.0);
    let sl = est.sl.clamp(0.0, 1.0);
    // The hot worker's shuffle share bounds the pipelined phase: charge the
    // intra-HDFS shuffle volume of the repartition family at the straggler
    // rate. DB-side and broadcast never shuffle L', so they are unaffected
    // — under extreme skew this is exactly what flips the advice away from
    // repartition/zigzag.
    let skew = est.shuffle_skew.clamp(1.0, n.max(1.0));
    // Per-worker build/probe volumes of each JEN-side hash join, for the
    // memory term. Broadcast replicates all of T' on every worker and
    // probes with the local L share; the repartition family builds its
    // (possibly Bloom-reduced) shuffled L' slice — the straggler's slice
    // under skew — and probes with its share of T'. DB-side joins build
    // nothing on JEN and carry no memory term.
    let budget = est.mem_budget_per_worker;
    let n1 = n.max(1.0);
    let mem_broadcast = spill_penalty(budget, t, l / n1, n);
    let mem_rep = spill_penalty(budget, l / n1 * skew, t / n1, n);
    let mem_rep_bf = spill_penalty(budget, l * sl / n1 * skew, t / n1, n);
    let mem_zigzag = spill_penalty(budget, l * sl / n1 * skew, t * st / n1, n);
    vec![
        (
            JoinAlgorithm::Broadcast,
            DB_EXPORT_WEIGHT * t * n + mem_broadcast,
        ),
        (JoinAlgorithm::DbSide { bloom: false }, DB_INGEST_WEIGHT * l),
        (
            JoinAlgorithm::DbSide { bloom: true },
            DB_INGEST_WEIGHT * l * sl + bf * n,
        ),
        (
            JoinAlgorithm::Repartition { bloom: false },
            DB_EXPORT_WEIGHT * t + INTRA_WEIGHT * l * skew + mem_rep,
        ),
        (
            JoinAlgorithm::Repartition { bloom: true },
            DB_EXPORT_WEIGHT * t + INTRA_WEIGHT * l * sl * skew + bf * n + mem_rep_bf,
        ),
        (
            JoinAlgorithm::Zigzag,
            DB_EXPORT_WEIGHT * t * st + INTRA_WEIGHT * l * sl * skew + bf * n + bf * n + mem_zigzag,
        ),
    ]
}

/// The estimated cost of one specific strategy, or `None` for strategies
/// the advisor does not model (semi-join and PERF baselines). The replan
/// controller uses this to price "keep going" against the alternatives.
pub fn cost_of(algorithm: JoinAlgorithm, est: &QueryEstimates) -> Option<f64> {
    estimated_costs(est)
        .into_iter()
        .find(|(a, _)| *a == algorithm)
        .map(|(_, c)| c)
}

/// Pick the algorithm with the lowest estimated transfer volume.
pub fn advise(est: &QueryEstimates) -> JoinAlgorithm {
    estimated_costs(est)
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("cost list is non-empty")
        .0
}

// ---------------------------------------------------------------------------
// multiway (star-schema) pricing
// ---------------------------------------------------------------------------

/// Pre-execution estimates for one dimension of a star query.
#[derive(Debug, Clone, Copy)]
pub struct DimEstimates {
    /// Bytes of the dimension after its local predicate + projection.
    pub dim_prime_bytes: u64,
    /// Rows of the dimension after its local predicate + projection.
    pub dim_prime_rows: u64,
    /// Fraction of fact rows that survive the join with this dimension
    /// (FK hits a selected dimension key). Shrinks the intermediate a
    /// cascade re-shuffles at every later step — the quantity that makes
    /// *uncorrelated* dimensions favor cascades and *correlated* ones
    /// (pass fraction ≈ 1, nothing shrinks) favor the one-shot hypercube.
    pub pass_fraction: f64,
}

/// Pre-execution estimates for a whole star query.
#[derive(Debug, Clone)]
pub struct StarEstimates {
    /// Bytes of the fact table after local predicates + projection.
    pub fact_prime_bytes: u64,
    /// Rows of the fact table after local predicates + projection.
    pub fact_prime_rows: u64,
    /// One entry per dimension, in query order.
    pub dims: Vec<DimEstimates>,
    pub num_jen_workers: usize,
}

/// One step of a left-deep cascade plan: which dimension joins next and
/// whether it is broadcast to every JEN worker (fact stays put) or
/// hash-routed (the intermediate re-shuffles to meet it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeStep {
    pub dim: usize,
    pub broadcast: bool,
}

/// A priced multiway execution strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiwayPlan {
    /// Left-deep cascade of binary joins, in step order.
    Cascade(Vec<CascadeStep>),
    /// One-shot hypercube (Shares) shuffle with this share vector.
    Hypercube(Vec<usize>),
}

/// The advisor's full multiway deliberation: the winner plus both priced
/// alternatives, so a forced planner can still run the *best* plan of its
/// family and callers can audit the margin.
#[derive(Debug, Clone)]
pub struct MultiwayChoice {
    pub plan: MultiwayPlan,
    pub cascade: (Vec<CascadeStep>, f64),
    pub hypercube: (Vec<usize>, f64),
}

/// Price one cascade order: per step the cheaper of broadcasting the
/// dimension (`DB_EXPORT · dim · n`, fact untouched) or re-shuffling the
/// intermediate to meet a hash-routed dimension (`DB_EXPORT · dim +
/// INTRA · cur`). The intermediate decays by the dimension's pass
/// fraction after each step. Step modes are independent, so the greedy
/// per-step choice is the optimum for a fixed order.
fn price_cascade(est: &StarEstimates, order: &[usize]) -> (Vec<CascadeStep>, f64) {
    let n = est.num_jen_workers.max(1) as f64;
    let mut cur = est.fact_prime_bytes as f64;
    let mut total = 0.0;
    let mut steps = Vec::with_capacity(order.len());
    for &d in order {
        let dim = est.dims[d].dim_prime_bytes as f64;
        let broadcast_cost = DB_EXPORT_WEIGHT * dim * n;
        let repartition_cost = DB_EXPORT_WEIGHT * dim + INTRA_WEIGHT * cur;
        let broadcast = broadcast_cost <= repartition_cost;
        total += broadcast_cost.min(repartition_cost);
        steps.push(CascadeStep { dim: d, broadcast });
        cur *= est.dims[d].pass_fraction.clamp(0.0, 1.0);
    }
    (steps, total)
}

/// All permutations of `0..k` (k ≤ 3 under the dimension cap, so at most
/// six), in lexicographic order for a deterministic tie-break.
fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..k).collect(), &mut out);
    out
}

/// The cheapest left-deep cascade over every dimension order.
pub fn best_cascade(est: &StarEstimates) -> (Vec<CascadeStep>, f64) {
    permutations(est.dims.len())
        .iter()
        .map(|order| price_cascade(est, order))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("at least one dimension order")
}

/// Every share vector `s` with `Π sᵢ ≤ n` (one worker per grid cell, the
/// rest idle), each component in `1..=n`.
fn share_vectors(k: usize, n: usize) -> Vec<Vec<usize>> {
    fn rec(k: usize, budget: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if prefix.len() == k {
            out.push(prefix.clone());
            return;
        }
        for s in 1..=budget {
            prefix.push(s);
            rec(k, budget / s, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(k, n.max(1), &mut Vec::new(), &mut out);
    out
}

/// Price one hypercube share vector: the fact shuffles once (every row to
/// exactly one grid cell) and dimension `i` replicates to the `cells/sᵢ`
/// workers of each cell along its axis (Afrati & Ullman's Shares).
fn price_hypercube(est: &StarEstimates, shares: &[usize]) -> f64 {
    let cells: usize = shares.iter().product();
    let dim_export: f64 = est
        .dims
        .iter()
        .zip(shares)
        .map(|(d, &s)| d.dim_prime_bytes as f64 * (cells / s) as f64)
        .sum();
    INTRA_WEIGHT * est.fact_prime_bytes as f64 + DB_EXPORT_WEIGHT * dim_export
}

/// The cheapest hypercube share vector. Only *full* grids are priced —
/// `Π sᵢ = n`, following Afrati & Ullman, who fix the cell count at the
/// worker count and optimise the shares: a smaller grid always ships
/// fewer replicated dimension bytes, but idles workers and concentrates
/// the entire fact probe on the cells that remain, which the byte-level
/// model cannot see. (`[n, 1, …, 1]` keeps the set non-empty for any
/// `n`.) Cost ties prefer more grid cells, then the lexicographically
/// smallest vector — fully deterministic.
pub fn best_hypercube(est: &StarEstimates) -> (Vec<usize>, f64) {
    let n = est.num_jen_workers.max(1);
    share_vectors(est.dims.len(), n)
        .into_iter()
        .filter(|s| s.iter().product::<usize>() == n)
        .map(|s| {
            let c = price_hypercube(est, &s);
            (s, c)
        })
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("costs are finite")
                .then_with(|| {
                    let (ca, cb) = (a.0.iter().product::<usize>(), b.0.iter().product::<usize>());
                    cb.cmp(&ca).then_with(|| a.0.cmp(&b.0))
                })
        })
        .expect("at least the all-ones share vector")
}

/// Price the best cascade against the best hypercube and pick the winner.
/// Ties go to the cascade: with one dimension the hypercube with share
/// vector `[n]` *is* a repartition cascade, and the simpler plan wins.
pub fn advise_multiway(est: &StarEstimates) -> MultiwayChoice {
    let cascade = best_cascade(est);
    let hypercube = best_hypercube(est);
    let plan = if hypercube.1 < cascade.1 {
        MultiwayPlan::Hypercube(hypercube.0.clone())
    } else {
        MultiwayPlan::Cascade(cascade.0.clone())
    };
    MultiwayChoice {
        plan,
        cascade,
        hypercube,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper-scale sizes: T = 97 GB, L(parquet) = 421 GB, 30+30 workers,
    /// 16 MB Bloom filters.
    fn paper_estimates(sigma_t: f64, sigma_l: f64, st: f64, sl: f64) -> QueryEstimates {
        // projected T' carries ~1/4 of T row width, L' similar.
        let t_full: f64 = 25e9;
        let l_full: f64 = 120e9;
        QueryEstimates {
            t_prime_bytes: (t_full * sigma_t) as u64,
            l_prime_bytes: (l_full * sigma_l) as u64,
            st,
            sl,
            num_jen_workers: 30,
            bloom_bytes: 16 << 20,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        }
    }

    #[test]
    fn tiny_db_predicate_means_broadcast() {
        // σT = 0.001 → T' ≈ 25 MB: the paper's broadcast regime (§5.1.2)
        let est = paper_estimates(0.001, 0.2, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::Broadcast);
    }

    #[test]
    fn tiny_hdfs_predicate_means_db_side() {
        // σL = 0.001 → L' ≈ 120 MB: DB-side wins (§5.3), and with such a
        // small L' the plain variant beats paying for the Bloom filter
        // (§5.2: "the overhead … can cancel out or even outweigh its benefit")
        let est = paper_estimates(0.1, 0.001, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::DbSide { bloom: false });
    }

    #[test]
    fn moderate_hdfs_predicate_with_selective_join_means_db_bloom() {
        // σL = 0.01 with a selective join: DB-side with Bloom (§5.2)
        let est = paper_estimates(0.1, 0.01, 0.5, 0.1);
        assert_eq!(advise(&est), JoinAlgorithm::DbSide { bloom: true });
    }

    #[test]
    fn common_case_means_zigzag() {
        // no highly selective predicate anywhere, selective join keys:
        // the robust choice is zigzag (§5.5)
        let est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        assert_eq!(advise(&est), JoinAlgorithm::Zigzag);
    }

    #[test]
    fn unselective_join_keys_fall_back_to_repartition_family() {
        // join-key predicates filter nothing (st = sl = 1): zigzag's two
        // Bloom exchanges are pure overhead
        let est = paper_estimates(0.1, 0.4, 1.0, 1.0);
        let choice = advise(&est);
        assert_eq!(choice, JoinAlgorithm::Repartition { bloom: false });
    }

    #[test]
    fn extreme_skew_flips_repartition_to_broadcast() {
        // Modest T', unselective join keys: repartition is the uniform-key
        // choice. A single hot key (skew = worker count) inflates its
        // straggler-bound shuffle 30×, while broadcast — which never
        // shuffles L' — is untouched and takes over.
        let mut est = paper_estimates(0.01, 0.2, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::Repartition { bloom: false });
        est.shuffle_skew = 30.0;
        assert_eq!(advise(&est), JoinAlgorithm::Broadcast);
    }

    #[test]
    fn tight_memory_budget_flips_repartition_to_db_side() {
        // Unselective join keys make plain repartition the uniform choice
        // — but its per-worker build (L'/30 ≈ 1.6 GB here) dwarfs a 64 MB
        // budget, so nearly all of it would spill and re-read. The DB-side
        // join builds nothing on JEN, pays no memory term, and takes over.
        let mut est = paper_estimates(0.1, 0.4, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::Repartition { bloom: false });
        est.mem_budget_per_worker = Some(64 << 20);
        assert_eq!(advise(&est), JoinAlgorithm::DbSide { bloom: false });
    }

    #[test]
    fn generous_memory_budget_changes_nothing() {
        // A budget the build fits under must leave every estimate
        // byte-identical to the unbounded advisor.
        let mut est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        let unbounded = estimated_costs(&est);
        est.mem_budget_per_worker = Some(1 << 40);
        assert_eq!(estimated_costs(&est), unbounded);
        assert_eq!(advise(&est), JoinAlgorithm::Zigzag);
    }

    #[test]
    fn db_side_costs_never_carry_a_memory_term() {
        let mut est = paper_estimates(0.1, 0.4, 0.5, 0.5);
        let unbounded = estimated_costs(&est);
        est.mem_budget_per_worker = Some(1); // brutally tight
        let tight = estimated_costs(&est);
        for ((alg, before), (alg2, after)) in unbounded.iter().zip(tight.iter()) {
            assert_eq!(alg, alg2);
            match alg {
                JoinAlgorithm::DbSide { .. } => assert_eq!(before, after, "{alg:?}"),
                _ => assert!(after > before, "{alg:?} must pay a spill penalty"),
            }
        }
    }

    #[test]
    fn skew_is_clamped_to_sane_range() {
        let mut est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        est.shuffle_skew = 0.0; // nonsense below 1.0 treated as uniform
        let base = estimated_costs(&est);
        est.shuffle_skew = 1.0;
        assert_eq!(estimated_costs(&est), base);
    }

    #[test]
    fn cost_of_matches_the_cost_table() {
        let est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        for (alg, c) in estimated_costs(&est) {
            assert_eq!(cost_of(alg, &est), Some(c));
        }
        assert_eq!(cost_of(JoinAlgorithm::SemiJoin, &est), None);
        assert_eq!(cost_of(JoinAlgorithm::PerfJoin, &est), None);
    }

    fn star(fact_bytes: u64, dim_bytes: u64, pass: f64, n: usize) -> StarEstimates {
        StarEstimates {
            fact_prime_bytes: fact_bytes,
            fact_prime_rows: fact_bytes / 50,
            dims: (0..3)
                .map(|_| DimEstimates {
                    dim_prime_bytes: dim_bytes,
                    dim_prime_rows: dim_bytes / 12,
                    pass_fraction: pass,
                })
                .collect(),
            num_jen_workers: n,
        }
    }

    /// The documented advisor flip (DESIGN.md §16): tiny dimensions are
    /// cheapest broadcast one after another — the fact table never moves —
    /// while large *correlated* dimensions (pass fraction ≈ 1, so a cascade
    /// re-shuffles an undiminished intermediate at every step) flip the
    /// choice to the one-shot hypercube, which moves the fact exactly once.
    #[test]
    fn multiway_flips_from_broadcast_cascade_to_hypercube() {
        // 1 MB fact, 1 kB dimensions: cascade of three broadcasts.
        let small = star(1_000_000, 1_000, 0.9, 8);
        let choice = advise_multiway(&small);
        match &choice.plan {
            MultiwayPlan::Cascade(steps) => {
                assert_eq!(steps.len(), 3);
                assert!(steps.iter().all(|s| s.broadcast), "{steps:?}");
            }
            other => panic!("small dims should cascade, got {other:?}"),
        }

        // 2 MB fact, 67 kB correlated dimensions: broadcast pays 3·n·Σdim,
        // a repartition cascade re-ships the (unshrinking) fact three
        // times, and the hypercube undercuts both.
        let large = star(2_000_000, 67_000, 0.95, 8);
        let choice = advise_multiway(&large);
        match &choice.plan {
            MultiwayPlan::Hypercube(shares) => {
                assert_eq!(shares.len(), 3);
                let cells: usize = shares.iter().product();
                assert!(cells > 1 && cells <= 8, "{shares:?}");
            }
            other => panic!("large correlated dims should hypercube, got {other:?}"),
        }
        assert!(choice.hypercube.1 < choice.cascade.1);
    }

    #[test]
    fn share_vectors_respect_the_worker_budget() {
        for s in super::share_vectors(3, 8) {
            assert!(s.iter().product::<usize>() <= 8, "{s:?}");
            assert!(s.iter().all(|&x| x >= 1));
        }
        // the symmetric cube is among the candidates
        assert!(super::share_vectors(3, 8).contains(&vec![2, 2, 2]));
        assert_eq!(super::share_vectors(1, 4).len(), 4);
    }

    #[test]
    fn single_dimension_tie_goes_to_the_cascade() {
        // With one dimension, hypercube [n] prices identically to the
        // repartition cascade; the simpler cascade must win the tie.
        let est = StarEstimates {
            fact_prime_bytes: 1_000_000,
            fact_prime_rows: 20_000,
            dims: vec![DimEstimates {
                dim_prime_bytes: 500_000,
                dim_prime_rows: 40_000,
                pass_fraction: 1.0,
            }],
            num_jen_workers: 4,
        };
        let choice = advise_multiway(&est);
        assert!(matches!(choice.plan, MultiwayPlan::Cascade(_)));
        assert_eq!(choice.cascade.1, choice.hypercube.1);
    }

    #[test]
    fn uncorrelated_dims_favor_the_cascade() {
        // Same sizes as the hypercube case above, but pass fractions of
        // 0.2 shrink the intermediate 5× per step — the cascade's later
        // re-shuffles become nearly free and it wins back.
        let est = star(2_000_000, 67_000, 0.2, 8);
        let choice = advise_multiway(&est);
        assert!(matches!(choice.plan, MultiwayPlan::Cascade(_)));
    }

    #[test]
    fn costs_cover_all_paper_variants() {
        let est = paper_estimates(0.1, 0.1, 0.5, 0.5);
        let costs = estimated_costs(&est);
        assert_eq!(costs.len(), 6);
        for (_, c) in costs {
            assert!(c.is_finite() && c >= 0.0);
        }
    }
}
