//! Algorithm advisor — the decision rules of the paper's discussion (§5.5).
//!
//! "Broadcast join only works for very limited cases … the DB-side join
//! works well only when the HDFS table after predicates and projection is
//! relatively small … for a large HDFS table without highly selective
//! predicates, zigzag join is the most reliable join method."
//!
//! The advisor turns those findings into a transfer-volume estimate per
//! algorithm and picks the cheapest. Scan cost is excluded: every strategy
//! scans `L` exactly once, so transfers are what separates them — precisely
//! the quantity the paper's Bloom filters attack.

use crate::algorithms::JoinAlgorithm;

/// Pre-execution estimates about one query (from catalog statistics in a
/// real system; the experiment harness derives them from the generator's
/// spec).
#[derive(Debug, Clone, Copy)]
pub struct QueryEstimates {
    /// Bytes of the database table after local predicates + projection.
    pub t_prime_bytes: u64,
    /// Bytes of the HDFS table after local predicates + projection.
    pub l_prime_bytes: u64,
    /// Join-key selectivity on `T'` (fraction of `T'` join keys that appear
    /// in `L'` — `S_T'` in the paper). 1.0 when unknown.
    pub st: f64,
    /// Join-key selectivity on `L'` (`S_L'`). 1.0 when unknown.
    pub sl: f64,
    /// JEN worker count (broadcast fan-out).
    pub num_jen_workers: usize,
    /// Wire size of one Bloom filter.
    pub bloom_bytes: u64,
    /// Estimated shuffle imbalance: max JEN worker's share of the `L'`
    /// shuffle over the mean (1.0 = uniform keys, `num_jen_workers` =
    /// a single hot key). The straggler bounds every pipelined shuffle
    /// phase, so shuffle-based strategies scale with it; broadcast (which
    /// replicates `T'` everywhere and keeps `L` local) is immune.
    pub shuffle_skew: f64,
    /// Build-side memory budget *per JEN worker*, bytes (`None` =
    /// unbounded). When a strategy's per-worker hash build exceeds it, the
    /// hybrid hash join evicts the excess to local spill runs and re-reads
    /// it at probe time — a real cost the advisor must charge, so a tight
    /// budget can flip the advice toward a plan that builds less (or not
    /// at all) on the JEN side.
    pub mem_budget_per_worker: Option<u64>,
}

/// Relative cost of an intra-HDFS byte vs a cross-cluster byte. The paper's
/// testbed has 30 × 1 GbE inside the HDFS cluster vs a 20 Gbit switch
/// between clusters — aggregate intra bandwidth is moderately higher.
const INTRA_WEIGHT: f64 = 0.7;

/// Per-byte penalty for data *leaving* the database: the paper exports
/// tuples through C UDFs writing to sockets row by row — far more expensive
/// than raw link bandwidth (this is why zigzag's `T''` reduction matters).
const DB_EXPORT_WEIGHT: f64 = 3.0;

/// Per-byte penalty for data *entering* the database through the
/// `read_hdfs` table UDF (the steep σL slope of the DB-side joins).
const DB_INGEST_WEIGHT: f64 = 2.0;

/// Per-byte weight of local spill traffic. Spill runs live on the JEN
/// workers' local disks — cheaper per byte than a cross-cluster transfer —
/// but every evicted byte makes a round trip (written once, read back
/// once), which [`spill_penalty`] charges explicitly.
const SPILL_WEIGHT: f64 = 0.6;

/// Extra byte-equivalents a JEN-build strategy pays under a memory budget.
///
/// With per-worker build volume `build_pw` over a budget `b`, the hybrid
/// hash join keeps `b` bytes resident and spills the excess; the probe
/// slices that hash to evicted partitions make the same disk round trip.
/// `None` (or a build that fits) costs nothing, so budget-free advice is
/// byte-identical to the pre-governor advisor.
fn spill_penalty(budget: Option<u64>, build_pw: f64, probe_pw: f64, n: f64) -> f64 {
    let Some(b) = budget else { return 0.0 };
    let excess = build_pw - b as f64;
    if excess <= 0.0 || build_pw <= 0.0 {
        return 0.0;
    }
    let evicted_fraction = excess / build_pw;
    SPILL_WEIGHT * n * 2.0 * (excess + probe_pw * evicted_fraction)
}

/// Estimated transfer cost (in cross-cluster byte-equivalents) of each
/// strategy.
pub fn estimated_costs(est: &QueryEstimates) -> Vec<(JoinAlgorithm, f64)> {
    let t = est.t_prime_bytes as f64;
    let l = est.l_prime_bytes as f64;
    let bf = est.bloom_bytes as f64;
    let n = est.num_jen_workers as f64;
    let st = est.st.clamp(0.0, 1.0);
    let sl = est.sl.clamp(0.0, 1.0);
    // The hot worker's shuffle share bounds the pipelined phase: charge the
    // intra-HDFS shuffle volume of the repartition family at the straggler
    // rate. DB-side and broadcast never shuffle L', so they are unaffected
    // — under extreme skew this is exactly what flips the advice away from
    // repartition/zigzag.
    let skew = est.shuffle_skew.clamp(1.0, n.max(1.0));
    // Per-worker build/probe volumes of each JEN-side hash join, for the
    // memory term. Broadcast replicates all of T' on every worker and
    // probes with the local L share; the repartition family builds its
    // (possibly Bloom-reduced) shuffled L' slice — the straggler's slice
    // under skew — and probes with its share of T'. DB-side joins build
    // nothing on JEN and carry no memory term.
    let budget = est.mem_budget_per_worker;
    let n1 = n.max(1.0);
    let mem_broadcast = spill_penalty(budget, t, l / n1, n);
    let mem_rep = spill_penalty(budget, l / n1 * skew, t / n1, n);
    let mem_rep_bf = spill_penalty(budget, l * sl / n1 * skew, t / n1, n);
    let mem_zigzag = spill_penalty(budget, l * sl / n1 * skew, t * st / n1, n);
    vec![
        (
            JoinAlgorithm::Broadcast,
            DB_EXPORT_WEIGHT * t * n + mem_broadcast,
        ),
        (JoinAlgorithm::DbSide { bloom: false }, DB_INGEST_WEIGHT * l),
        (
            JoinAlgorithm::DbSide { bloom: true },
            DB_INGEST_WEIGHT * l * sl + bf * n,
        ),
        (
            JoinAlgorithm::Repartition { bloom: false },
            DB_EXPORT_WEIGHT * t + INTRA_WEIGHT * l * skew + mem_rep,
        ),
        (
            JoinAlgorithm::Repartition { bloom: true },
            DB_EXPORT_WEIGHT * t + INTRA_WEIGHT * l * sl * skew + bf * n + mem_rep_bf,
        ),
        (
            JoinAlgorithm::Zigzag,
            DB_EXPORT_WEIGHT * t * st + INTRA_WEIGHT * l * sl * skew + bf * n + bf * n + mem_zigzag,
        ),
    ]
}

/// The estimated cost of one specific strategy, or `None` for strategies
/// the advisor does not model (semi-join and PERF baselines). The replan
/// controller uses this to price "keep going" against the alternatives.
pub fn cost_of(algorithm: JoinAlgorithm, est: &QueryEstimates) -> Option<f64> {
    estimated_costs(est)
        .into_iter()
        .find(|(a, _)| *a == algorithm)
        .map(|(_, c)| c)
}

/// Pick the algorithm with the lowest estimated transfer volume.
pub fn advise(est: &QueryEstimates) -> JoinAlgorithm {
    estimated_costs(est)
        .into_iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite"))
        .expect("cost list is non-empty")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper-scale sizes: T = 97 GB, L(parquet) = 421 GB, 30+30 workers,
    /// 16 MB Bloom filters.
    fn paper_estimates(sigma_t: f64, sigma_l: f64, st: f64, sl: f64) -> QueryEstimates {
        // projected T' carries ~1/4 of T row width, L' similar.
        let t_full: f64 = 25e9;
        let l_full: f64 = 120e9;
        QueryEstimates {
            t_prime_bytes: (t_full * sigma_t) as u64,
            l_prime_bytes: (l_full * sigma_l) as u64,
            st,
            sl,
            num_jen_workers: 30,
            bloom_bytes: 16 << 20,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        }
    }

    #[test]
    fn tiny_db_predicate_means_broadcast() {
        // σT = 0.001 → T' ≈ 25 MB: the paper's broadcast regime (§5.1.2)
        let est = paper_estimates(0.001, 0.2, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::Broadcast);
    }

    #[test]
    fn tiny_hdfs_predicate_means_db_side() {
        // σL = 0.001 → L' ≈ 120 MB: DB-side wins (§5.3), and with such a
        // small L' the plain variant beats paying for the Bloom filter
        // (§5.2: "the overhead … can cancel out or even outweigh its benefit")
        let est = paper_estimates(0.1, 0.001, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::DbSide { bloom: false });
    }

    #[test]
    fn moderate_hdfs_predicate_with_selective_join_means_db_bloom() {
        // σL = 0.01 with a selective join: DB-side with Bloom (§5.2)
        let est = paper_estimates(0.1, 0.01, 0.5, 0.1);
        assert_eq!(advise(&est), JoinAlgorithm::DbSide { bloom: true });
    }

    #[test]
    fn common_case_means_zigzag() {
        // no highly selective predicate anywhere, selective join keys:
        // the robust choice is zigzag (§5.5)
        let est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        assert_eq!(advise(&est), JoinAlgorithm::Zigzag);
    }

    #[test]
    fn unselective_join_keys_fall_back_to_repartition_family() {
        // join-key predicates filter nothing (st = sl = 1): zigzag's two
        // Bloom exchanges are pure overhead
        let est = paper_estimates(0.1, 0.4, 1.0, 1.0);
        let choice = advise(&est);
        assert_eq!(choice, JoinAlgorithm::Repartition { bloom: false });
    }

    #[test]
    fn extreme_skew_flips_repartition_to_broadcast() {
        // Modest T', unselective join keys: repartition is the uniform-key
        // choice. A single hot key (skew = worker count) inflates its
        // straggler-bound shuffle 30×, while broadcast — which never
        // shuffles L' — is untouched and takes over.
        let mut est = paper_estimates(0.01, 0.2, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::Repartition { bloom: false });
        est.shuffle_skew = 30.0;
        assert_eq!(advise(&est), JoinAlgorithm::Broadcast);
    }

    #[test]
    fn tight_memory_budget_flips_repartition_to_db_side() {
        // Unselective join keys make plain repartition the uniform choice
        // — but its per-worker build (L'/30 ≈ 1.6 GB here) dwarfs a 64 MB
        // budget, so nearly all of it would spill and re-read. The DB-side
        // join builds nothing on JEN, pays no memory term, and takes over.
        let mut est = paper_estimates(0.1, 0.4, 1.0, 1.0);
        assert_eq!(advise(&est), JoinAlgorithm::Repartition { bloom: false });
        est.mem_budget_per_worker = Some(64 << 20);
        assert_eq!(advise(&est), JoinAlgorithm::DbSide { bloom: false });
    }

    #[test]
    fn generous_memory_budget_changes_nothing() {
        // A budget the build fits under must leave every estimate
        // byte-identical to the unbounded advisor.
        let mut est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        let unbounded = estimated_costs(&est);
        est.mem_budget_per_worker = Some(1 << 40);
        assert_eq!(estimated_costs(&est), unbounded);
        assert_eq!(advise(&est), JoinAlgorithm::Zigzag);
    }

    #[test]
    fn db_side_costs_never_carry_a_memory_term() {
        let mut est = paper_estimates(0.1, 0.4, 0.5, 0.5);
        let unbounded = estimated_costs(&est);
        est.mem_budget_per_worker = Some(1); // brutally tight
        let tight = estimated_costs(&est);
        for ((alg, before), (alg2, after)) in unbounded.iter().zip(tight.iter()) {
            assert_eq!(alg, alg2);
            match alg {
                JoinAlgorithm::DbSide { .. } => assert_eq!(before, after, "{alg:?}"),
                _ => assert!(after > before, "{alg:?} must pay a spill penalty"),
            }
        }
    }

    #[test]
    fn skew_is_clamped_to_sane_range() {
        let mut est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        est.shuffle_skew = 0.0; // nonsense below 1.0 treated as uniform
        let base = estimated_costs(&est);
        est.shuffle_skew = 1.0;
        assert_eq!(estimated_costs(&est), base);
    }

    #[test]
    fn cost_of_matches_the_cost_table() {
        let est = paper_estimates(0.1, 0.4, 0.2, 0.1);
        for (alg, c) in estimated_costs(&est) {
            assert_eq!(cost_of(alg, &est), Some(c));
        }
        assert_eq!(cost_of(JoinAlgorithm::SemiJoin, &est), None);
        assert_eq!(cost_of(JoinAlgorithm::PerfJoin, &est), None);
    }

    #[test]
    fn costs_cover_all_paper_variants() {
        let est = paper_estimates(0.1, 0.1, 0.5, 0.5);
        let costs = estimated_costs(&est);
        assert_eq!(costs.len(), 6);
        for (_, c) in costs {
            assert!(c.is_finite() && c >= 0.0);
        }
    }
}
