//! Mid-query adaptive re-optimization — the runtime feedback + replan
//! subsystem that closes the estimator → advisor → tracer loop.
//!
//! The advisor (§5.5) picks a strategy from *estimates*; the estimator
//! samples, so its estimates can be badly wrong (a clustered file and a
//! strided block sample is all it takes). Every algorithm's first phase —
//! scan + filter both tables, optionally build and apply `BF_DB` — already
//! *measures* the exact quantities the advisor guessed at: `T'`/`L'`
//! volume, the join-key selectivities, and the shuffle-key skew. This
//! module pauses at that phase boundary, compares observed actuals against
//! the [`QueryEstimates`] the plan was chosen with, and when the divergence
//! exceeds [`SystemConfig::replan_threshold`], re-prices the remaining work
//! with corrected estimates. If a different strategy now wins by a clear
//! hysteresis margin, the rest of the old plan is abandoned and the query
//! restarts as the new algorithm under a fresh fabric sub-namespace —
//! *reusing everything the first phase already paid for*: the scanned
//! `T'` partitions, the filtered `L'` blocks, and (via the [`BloomCache`])
//! an already-serialized `BF_DB`.
//!
//! With `replan_threshold = None` (the default) the controller is inert:
//! [`run_adaptive`] delegates straight to [`run`] and every run is
//! byte-identical to the pre-adaptive system.
//!
//! Metering: `advisor.est_error_x1000.{scan,bloom,shuffle}` records the
//! observed/estimated divergence per observation dimension on every armed
//! run; `advisor.replan_considered` counts threshold crossings;
//! `advisor.replans` counts actual restarts. The tracer records a
//! [`Stage::Replan`] span on the coordinator linking the abandoned and
//! restarted timelines.
//!
//! [`SystemConfig::replan_threshold`]: crate::system::SystemConfig::replan_threshold
//! [`BloomCache`]: crate::cache::BloomCache

use crate::advisor::{cost_of, estimated_costs, QueryEstimates};
use crate::algorithms::{
    add_final_aggregation_steps, db_build_and_multicast_bloom, db_route_to_jen, db_scan_step,
    db_tasks, dispatch, finish_run, jen_probe_aggregate, jen_recv_build, jen_shuffle_share,
    jen_take_bloom, jen_tasks, prepare_run, run, t_prime_schema, take_result, DbTask, Driver,
    JenTask, JoinAlgorithm, TaskSet,
};
use crate::query::HybridQuery;
use crate::skew::SaltRouter;
use crate::stats::RunOutput;
use crate::system::{HybridSystem, ZigzagReaccess};
use hybrid_bloom::{filter_batch, BloomFilter};
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::ops::{HashAggregator, HashJoiner};
use hybrid_common::trace::Stage;
use hybrid_edw::DbJoinSpec;
use hybrid_jen::pipeline::scan_blocks_batched;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, StreamTag};
use std::collections::HashSet;

/// How decisively the corrected cost model must favor a different strategy
/// before the controller abandons work in flight: the replacement's
/// remaining cost × this factor must still undercut the current plan's
/// remaining cost. Without the margin, estimates hovering near a crossover
/// would flip plans on noise — and every flip re-pays the restart overhead.
pub const REPLAN_HYSTERESIS: f64 = 1.2;

/// Namespace offset for a replanned attempt's fabric sub-namespace:
/// `REPLAN_NS_OFFSET + parent_ns` is unique among live sessions (the
/// service hands out small monotone session ids) and never collides with
/// the parent itself.
pub const REPLAN_NS_OFFSET: u64 = 1 << 48;

/// Cap on the metered estimation-error ratios, and the sentinel ratio for
/// an estimate that was zero where the observation was not (or vice
/// versa): "off by at least three orders of magnitude".
const MAX_ERR_RATIO: f64 = 1000.0;

/// The mid-query replan controller: the threshold it was armed with and
/// the estimates the running plan was chosen under.
#[derive(Debug, Clone, Copy)]
pub struct ReplanController {
    /// Divergence ratio (observed vs estimated, always ≥ 1.0) above which
    /// the remaining work is re-priced. From
    /// [`SystemConfig::replan_threshold`](crate::system::SystemConfig::replan_threshold).
    pub threshold: f64,
    /// What the advisor believed when it picked the running algorithm.
    pub estimates: QueryEstimates,
}

/// Everything the first phase materialized, parked across the observation
/// point. A continued plan resumes from this state; a replanned one reuses
/// it under the new strategy — neither re-reads a table.
pub(crate) struct PrescanData {
    /// Per-DB-worker `T'` partitions (scanned, filtered, projected).
    pub t_parts: Vec<Batch>,
    /// Per-JEN-worker filtered `L'` scan output, in block batches.
    pub l_blocks: Vec<Vec<Batch>>,
    /// Whether `BF_DB` was built and applied during the prescan — when
    /// true, `l_blocks` only holds rows whose key (probably) joins `T'`.
    pub bloomed: bool,
}

/// Exact first-phase actuals, measured from the materialized prescan state
/// — the observed counterparts of the advisor's [`QueryEstimates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    pub t_prime_bytes: u64,
    pub l_prime_bytes: u64,
    /// Observed `S_T'`: fraction of `T'` join keys that appear in `L'`.
    pub st: f64,
    /// Observed `S_L'`.
    pub sl: f64,
    /// Observed shuffle imbalance of the surviving `L'` keys under the
    /// agreed hash (hottest worker's share over the mean).
    pub shuffle_skew: f64,
}

/// Per-dimension observed/estimated divergence ratios (each ≥ 1.0).
#[derive(Debug, Clone, Copy)]
pub struct EstErrors {
    /// Worst of the `T'` / `L'` post-scan volume ratios.
    pub scan: f64,
    /// Worst of the `S_T'` / `S_L'` join-selectivity ratios (the
    /// quantities the Bloom phases hinge on).
    pub bloom: f64,
    /// Shuffle-skew ratio.
    pub shuffle: f64,
}

impl EstErrors {
    pub fn worst(&self) -> f64 {
        self.scan.max(self.bloom).max(self.shuffle)
    }
}

/// Symmetric divergence ratio between an observed and an estimated value:
/// 1.0 = perfect, 2.0 = off by 2× in either direction. Zero-vs-nonzero is
/// clamped to [`MAX_ERR_RATIO`] instead of infinity so the metered value
/// stays finite.
fn err_ratio(actual: f64, estimate: f64) -> f64 {
    if actual <= 0.0 && estimate <= 0.0 {
        return 1.0;
    }
    if actual <= 0.0 || estimate <= 0.0 {
        return MAX_ERR_RATIO;
    }
    (actual / estimate)
        .max(estimate / actual)
        .min(MAX_ERR_RATIO)
}

/// Does this strategy transfer a serialized `BF_DB` to the JEN side? These
/// are the plans whose restart can reuse the filter the abandoned attempt
/// already built.
pub(crate) fn uses_bf_db(algorithm: JoinAlgorithm) -> bool {
    matches!(
        algorithm,
        JoinAlgorithm::DbSide { bloom: true }
            | JoinAlgorithm::Repartition { bloom: true }
            | JoinAlgorithm::Zigzag
    )
}

/// Remaining-work re-pricing: with `corrected` estimates, find the
/// strategy that now beats `current` by the hysteresis margin.
///
/// `bf_db_discount` is the byte-equivalent credit a `BF_DB`-using
/// candidate gets when the abandoned plan already built the filter (its
/// serialized bytes sit in the Bloom cache, so only the multicast — not
/// the build — is left to pay; the discount is the build's share of the
/// `bf·n` term, conservatively the whole term since the sunk prescan also
/// already applied the filter to `L`). Returns the winner with its
/// remaining cost and the current plan's, or `None` when staying put wins.
pub(crate) fn pick_replacement(
    corrected: &QueryEstimates,
    current: JoinAlgorithm,
    bf_db_discount: f64,
) -> Option<(JoinAlgorithm, f64, f64)> {
    let remaining = |alg: JoinAlgorithm, cost: f64| {
        if uses_bf_db(alg) {
            (cost - bf_db_discount).max(0.0)
        } else {
            cost
        }
    };
    let current_remaining = remaining(current, cost_of(current, corrected)?);
    let (best, best_remaining) = estimated_costs(corrected)
        .into_iter()
        .filter(|(a, _)| *a != current)
        .map(|(a, c)| (a, remaining(a, c)))
        .min_by(|x, y| x.1.partial_cmp(&y.1).expect("costs are finite"))?;
    (best_remaining * REPLAN_HYSTERESIS < current_remaining).then_some((
        best,
        best_remaining,
        current_remaining,
    ))
}

impl ReplanController {
    pub fn new(threshold: f64, estimates: QueryEstimates) -> ReplanController {
        ReplanController {
            threshold,
            estimates,
        }
    }

    /// Per-dimension divergence of `obs` from the plan-time estimates.
    ///
    /// A `bloomed` prescan observes the *filtered* `L'`: `BF_DB` already
    /// dropped the non-joining keys, so honest estimates predict an
    /// observed `L'` of roughly `l_prime_bytes · SL'` and an observed
    /// `S_L'` of ~1 (`S_T'` is untouched — the filter preserves the key
    /// intersection). The comparison must be against those post-filter
    /// expectations, or every accurate low-`SL'` estimate would read as a
    /// huge miss and trigger a false-positive replan. The shuffle axis has
    /// no post-filter counterpart at all — the plan-time skew describes
    /// the unfiltered key population, and the surviving keys' imbalance is
    /// a different quantity with no estimate to diverge from (a wrong
    /// `SL'` already surfaces on the scan axis as filtered-volume error) —
    /// so a bloomed prescan reports no divergence there.
    pub fn errors(&self, obs: &Observation, bloomed: bool) -> EstErrors {
        let est = &self.estimates;
        let (expected_l_bytes, expected_sl) = if bloomed {
            (est.l_prime_bytes as f64 * est.sl, 1.0)
        } else {
            (est.l_prime_bytes as f64, est.sl)
        };
        EstErrors {
            scan: err_ratio(obs.t_prime_bytes as f64, est.t_prime_bytes as f64)
                .max(err_ratio(obs.l_prime_bytes as f64, expected_l_bytes)),
            bloom: err_ratio(obs.st, est.st).max(err_ratio(obs.sl, expected_sl)),
            shuffle: if bloomed {
                1.0
            } else {
                err_ratio(obs.shuffle_skew, est.shuffle_skew.max(1.0))
            },
        }
    }

    /// The observation-point decision: meter the estimation error, and if
    /// the worst dimension diverges past the threshold, re-price the
    /// remaining work with corrected estimates. `Some(target)` means
    /// "abandon the current plan and restart as `target`".
    pub(crate) fn decide(
        &self,
        sys: &HybridSystem,
        query: &HybridQuery,
        current: JoinAlgorithm,
        obs: &Observation,
        pre: &PrescanData,
    ) -> Option<JoinAlgorithm> {
        let errors = self.errors(obs, pre.bloomed);
        sys.metrics.add(
            "advisor.est_error_x1000.scan",
            (errors.scan * 1000.0) as u64,
        );
        sys.metrics.add(
            "advisor.est_error_x1000.bloom",
            (errors.bloom * 1000.0) as u64,
        );
        sys.metrics.add(
            "advisor.est_error_x1000.shuffle",
            (errors.shuffle * 1000.0) as u64,
        );
        if errors.worst() <= self.threshold {
            return None;
        }
        sys.metrics.incr("advisor.replan_considered");
        let corrected = QueryEstimates {
            t_prime_bytes: obs.t_prime_bytes,
            l_prime_bytes: obs.l_prime_bytes,
            st: obs.st,
            sl: obs.sl,
            num_jen_workers: sys.config.jen_workers,
            bloom_bytes: query.bloom.wire_bytes() as u64,
            shuffle_skew: obs.shuffle_skew,
            mem_budget_per_worker: sys.mem_budget_per_worker(),
        };
        let discount = if pre.bloomed {
            (query.bloom.wire_bytes() * sys.config.jen_workers) as f64
        } else {
            0.0
        };
        pick_replacement(&corrected, current, discount).map(|(target, _, _)| target)
    }
}

/// Execute `algorithm` with the mid-query replan controller armed (when
/// `SystemConfig::replan_threshold` is set) — the adaptive counterpart of
/// [`run`]. `estimates` is what the plan was chosen with; a disarmed
/// system (`replan_threshold = None`) ignores it and delegates to [`run`]
/// unchanged, byte for byte.
pub fn run_adaptive(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    algorithm: JoinAlgorithm,
    estimates: &QueryEstimates,
) -> Result<RunOutput> {
    let Some(threshold) = sys.config.replan_threshold else {
        return run(sys, query, algorithm);
    };
    prepare_run(sys, query)?;
    let controller = ReplanController::new(threshold, *estimates);
    let result = execute_adaptive(sys, query, algorithm, &controller)?;
    Ok(finish_run(sys, result))
}

/// The armed execution path: prescan to the observation point, observe,
/// decide, then continue or restart. Strategies the advisor does not price
/// (semi-join, PERF) have no cost to compare — they run unobserved.
fn execute_adaptive(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    algorithm: JoinAlgorithm,
    controller: &ReplanController,
) -> Result<Batch> {
    if cost_of(algorithm, &controller.estimates).is_none() {
        return dispatch(sys, query, algorithm);
    }
    let pre = prescan(sys, query, uses_bf_db(algorithm))?;
    let obs = observe(query, &pre)?;
    match controller.decide(sys, query, algorithm, &obs, &pre) {
        None => execute_from_prescan(sys, query, algorithm, pre),
        Some(target) => replan_and_restart(sys, query, target, pre),
    }
}

/// Phase 1 of every advisor-priced strategy, run as its own task-set pair:
/// scan/filter/project `T'` on each DB worker, optionally build and
/// multicast `BF_DB`, scan/filter `L'` (under the filter, if built) on
/// each JEN worker. Stops at the phase boundary with all streams fully
/// drained and no joiner state — a clean cancellation point.
pub(crate) fn prescan(
    sys: &HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
) -> Result<PrescanData> {
    let driver = &Driver::from_config(&sys.config);
    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: use_bloom.then(|| query.hdfs_key_base()),
    };

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    db.step(10, move |w, st| {
        st.part = Some(db_scan_step(sys, query, driver, w)?);
        Ok(())
    });
    if use_bloom {
        db.step(12, move |w, st| {
            if w == 0 {
                db_build_and_multicast_bloom(sys, query, st)
            } else {
                Ok(())
            }
        });
    }
    jen.step(20, move |w, st| {
        let bloom = if use_bloom {
            jen_take_bloom(st, StreamTag::DbBloom)?
        } else {
            None
        };
        let blocks = {
            let _permit = driver.compute_permit();
            scan_blocks_batched(
                &sys.jen_workers[w],
                &plan.table,
                &plan.blocks[w],
                scan_spec,
                bloom.as_ref(),
            )?
            .0
        };
        st.scanned = Some(blocks);
        Ok(())
    });

    let (db_states, jen_states) = driver.run_pair(db, jen)?;
    let t_parts = db_states
        .into_iter()
        .map(|mut st| {
            st.part
                .take()
                .ok_or_else(|| HybridError::exec("prescan left a DB worker without T'"))
        })
        .collect::<Result<Vec<_>>>()?;
    let l_blocks = jen_states
        .into_iter()
        .map(|mut st| st.scanned.take().unwrap_or_default())
        .collect();
    Ok(PrescanData {
        t_parts,
        l_blocks,
        bloomed: use_bloom,
    })
}

/// Measure the first-phase actuals from the materialized prescan state.
/// These are *exact* — byte sizes, distinct-key overlaps, and per-worker
/// shuffle loads over the full filtered data, not a sample. When the
/// prescan was bloomed, the observed values carry remaining-work
/// semantics directly: `L'` is already reduced by `BF_DB` and `sl`
/// observed ≈ 1, so cost formulas evaluated at the observation price
/// exactly the shuffle still ahead.
pub(crate) fn observe(query: &HybridQuery, pre: &PrescanData) -> Result<Observation> {
    let mut t_bytes = 0u64;
    let mut t_keys: HashSet<i64> = HashSet::new();
    for part in &pre.t_parts {
        t_bytes += part.serialized_bytes() as u64;
        let keys = part.column(query.db_key)?;
        for row in 0..part.num_rows() {
            t_keys.insert(keys.key_at(row)?);
        }
    }
    let num_jen = pre.l_blocks.len().max(1);
    let mut l_bytes = 0u64;
    let mut l_keys: HashSet<i64> = HashSet::new();
    let mut worker_loads = vec![0u64; num_jen];
    for blocks in &pre.l_blocks {
        for block in blocks {
            l_bytes += block.serialized_bytes() as u64;
            let keys = block.column(query.hdfs_key)?;
            for row in 0..block.num_rows() {
                let key = keys.key_at(row)?;
                l_keys.insert(key);
                worker_loads[agreed_shuffle_partition(key, num_jen)] += 1;
            }
        }
    }
    let inter = t_keys.intersection(&l_keys).count() as f64;
    let load_total: u64 = worker_loads.iter().sum();
    let shuffle_skew = if load_total == 0 {
        1.0
    } else {
        let max = *worker_loads.iter().max().expect("num_jen >= 1") as f64;
        max * num_jen as f64 / load_total as f64
    };
    Ok(Observation {
        t_prime_bytes: t_bytes,
        l_prime_bytes: l_bytes,
        st: if t_keys.is_empty() {
            1.0
        } else {
            inter / t_keys.len() as f64
        },
        sl: if l_keys.is_empty() {
            1.0
        } else {
            inter / l_keys.len() as f64
        },
        shuffle_skew,
    })
}

/// Abandon the current plan and restart the query as `target` in a fresh
/// fabric sub-namespace, reusing the prescan state. The sub-namespace
/// keeps the parent's metering plane, so the fabric conservation law
/// (root totals = Σ sessions) survives the restart; the query's existing
/// memory grant is untouched — a replan never re-enters admission.
fn replan_and_restart(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    target: JoinAlgorithm,
    pre: PrescanData,
) -> Result<Batch> {
    sys.metrics.incr("advisor.replans");
    let span = sys.tracer.start("coordinator", Stage::Replan);
    // The abandoned attempt's streams are all drained at the observation
    // point, but a chaos plan may have left held deliveries behind.
    sys.fabric.purge();
    let fresh = sys
        .fabric
        .subnamespace(REPLAN_NS_OFFSET + sys.fabric.ns())?;
    let parent = std::mem::replace(&mut sys.fabric, fresh);
    let result = execute_from_prescan(sys, query, target, pre);
    let fresh = std::mem::replace(&mut sys.fabric, parent);
    fresh.remove_namespace();
    let rows = result.as_ref().map(|b| b.num_rows() as u64).unwrap_or(0);
    span.done(0, rows);
    result
}

/// Run the remainder of `target` from the observation point: the prescan's
/// `T'` partitions and filtered `L'` blocks are injected into the worker
/// states, so no table is read twice. Used by both the continue path (the
/// divergence stayed under the threshold) and the restarted plan.
pub(crate) fn execute_from_prescan(
    sys: &HybridSystem,
    query: &HybridQuery,
    target: JoinAlgorithm,
    pre: PrescanData,
) -> Result<Batch> {
    match target {
        JoinAlgorithm::Repartition { bloom } => from_prescan_repartition(sys, query, bloom, pre),
        JoinAlgorithm::Zigzag => from_prescan_zigzag(sys, query, pre),
        JoinAlgorithm::Broadcast => from_prescan_broadcast(sys, query, pre),
        JoinAlgorithm::DbSide { bloom } => from_prescan_db_side(sys, query, bloom, pre),
        JoinAlgorithm::SemiJoin | JoinAlgorithm::PerfJoin => Err(HybridError::exec(
            "semi-join/PERF are not advisor candidates and never replan",
        )),
    }
}

/// Serialized `BF_DB` for a restarted Bloom-using plan. The cross-query
/// cache is consulted first — when the abandoned attempt (or any earlier
/// query) built this filter, the hit reuses its bytes outright. A miss
/// builds from the already-materialized `T'` partitions: same key set,
/// no second table access.
fn restart_bloom_bytes(
    sys: &HybridSystem,
    query: &HybridQuery,
    t_parts: &[Batch],
) -> Result<Vec<u8>> {
    if let Some(cache) = &sys.bloom_cache {
        if let Some(cached) = cache.get(&crate::cache::BloomKey::for_query(query)) {
            return Ok(cached.as_ref().clone());
        }
    }
    let span = sys.tracer.start("db", Stage::BloomBuild);
    let mut bf = BloomFilter::new(query.bloom);
    for part in t_parts {
        let keys = part.column(query.db_key)?;
        for row in 0..part.num_rows() {
            bf.insert(keys.key_at(row)?);
        }
    }
    let bytes = bf.to_bytes();
    span.done(bytes.len() as u64, 0);
    Ok(bytes)
}

/// Multicast pre-serialized `BF_DB` bytes (with EOS) to every JEN worker.
fn db_multicast_bloom_bytes(sys: &HybridSystem, st: &mut DbTask, bytes: &[u8]) -> Result<()> {
    for jen in sys.fabric.jen_endpoints() {
        st.mailbox
            .send_bloom(jen, StreamTag::DbBloom, bytes.to_vec())?;
        st.mailbox.send_eos(jen, StreamTag::DbBloom)?;
    }
    Ok(())
}

/// A restarted Bloom-using plan whose prescan ran *without* the filter:
/// take `BF_DB` off the wire and apply it to the parked scan output —
/// the work the prescan would have folded into the scan had the original
/// plan used the filter.
fn take_bf_and_filter_blocks(
    sys: &HybridSystem,
    query: &HybridQuery,
    st: &mut JenTask,
    w: usize,
) -> Result<Vec<Batch>> {
    let bf = jen_take_bloom(st, StreamTag::DbBloom)?
        .ok_or_else(|| HybridError::Net("BF_DB never arrived".into()))?;
    let blocks = st.scanned.take().unwrap_or_default();
    let span = sys
        .tracer
        .start(sys.jen_workers[w].span_label(), Stage::BloomApply);
    let mut rows = 0u64;
    let mut out = Vec::with_capacity(blocks.len());
    for block in &blocks {
        rows += block.num_rows() as u64;
        let (kept, _) = filter_batch(block, query.hdfs_key, &bf)?;
        out.push(kept);
    }
    span.done(0, rows);
    Ok(out)
}

/// Repartition (±BF) from the observation point (§3.3 steps 2+).
fn from_prescan_repartition(
    sys: &HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
    pre: PrescanData,
) -> Result<Batch> {
    let driver = &Driver::from_config(&sys.config);
    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;
    let salt = &SaltRouter::detect(sys, query)?;
    // The filter is only (re)built and shipped when the prescan did not
    // already apply it; a bloomed prescan's blocks are already reduced.
    let need_bf = use_bloom && !pre.bloomed;
    let bf_bytes = &if need_bf {
        Some(restart_bloom_bytes(sys, query, &pre.t_parts)?)
    } else {
        None
    };

    let PrescanData {
        t_parts, l_blocks, ..
    } = pre;
    let mut db_states = db_tasks(sys, driver)?;
    for (st, part) in db_states.iter_mut().zip(t_parts) {
        st.part = Some(part);
    }
    let mut jen_states = jen_tasks(sys, driver)?;
    for (st, blocks) in jen_states.iter_mut().zip(l_blocks) {
        st.scanned = Some(blocks);
    }
    let mut db = TaskSet::new("db", db_states);
    let mut jen = TaskSet::new("jen", jen_states);

    if need_bf {
        db.step(12, move |w, st| {
            if w == 0 {
                db_multicast_bloom_bytes(sys, st, bf_bytes.as_ref().expect("built when need_bf"))
            } else {
                Ok(())
            }
        });
    }
    db.step(14, move |w, st| {
        let part = st.part.take().expect("T' injected from prescan");
        db_route_to_jen(sys, query, st, w, &part, salt.as_ref())
    });
    jen.step(20, move |w, st| {
        let blocks = if need_bf {
            take_bf_and_filter_blocks(sys, query, st, w)?
        } else {
            st.scanned.take().unwrap_or_default()
        };
        jen_shuffle_share(sys, query, st, w, blocks, l_schema, salt.as_ref())
    });
    jen.step(30, move |w, st| {
        jen_recv_build(sys, query, driver, st, w, l_schema)
    });
    jen.step(32, move |w, st| {
        jen_probe_aggregate(sys, query, driver, st, w, t_schema)
    });
    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 40)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}

/// Zigzag from the observation point (§3.4 steps 3b+): `BF_H` still flows
/// back to the database and `T''` forward, exactly as in the cold plan.
fn from_prescan_zigzag(sys: &HybridSystem, query: &HybridQuery, pre: PrescanData) -> Result<Batch> {
    let driver = &Driver::from_config(&sys.config);
    let num_jen = sys.config.jen_workers;
    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let designated = sys.coordinator.designated_worker()?;
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;
    let salt = &SaltRouter::detect(sys, query)?;
    let need_bf = !pre.bloomed;
    let bf_bytes = &if need_bf {
        Some(restart_bloom_bytes(sys, query, &pre.t_parts)?)
    } else {
        None
    };

    let PrescanData {
        t_parts, l_blocks, ..
    } = pre;
    let mut db_states = db_tasks(sys, driver)?;
    for (st, part) in db_states.iter_mut().zip(t_parts) {
        st.part = Some(part);
    }
    let mut jen_states = jen_tasks(sys, driver)?;
    for (st, blocks) in jen_states.iter_mut().zip(l_blocks) {
        st.scanned = Some(blocks);
    }
    let mut db = TaskSet::new("db", db_states);
    let mut jen = TaskSet::new("jen", jen_states);

    if need_bf {
        db.step(12, move |w, st| {
            if w == 0 {
                db_multicast_bloom_bytes(sys, st, bf_bytes.as_ref().expect("built when need_bf"))
            } else {
                Ok(())
            }
        });
    }
    jen.step(20, move |w, st| {
        let l_blocks = if need_bf {
            take_bf_and_filter_blocks(sys, query, st, w)?
        } else {
            st.scanned.take().unwrap_or_default()
        };
        let worker = &sys.jen_workers[w];
        let local_bf = {
            let _permit = driver.compute_permit();
            worker.build_bloom_from_blocks(
                &l_blocks,
                query.hdfs_key,
                BloomFilter::new(query.bloom),
            )?
        };
        if w == designated.index() {
            st.local_bf = Some(local_bf);
        } else {
            let to = Endpoint::Jen(designated);
            st.mailbox
                .send_bloom(to, StreamTag::HdfsBloom, local_bf.to_bytes())?;
            st.mailbox.send_eos(to, StreamTag::HdfsBloom)?;
        }
        jen_shuffle_share(sys, query, st, w, l_blocks, l_schema, salt.as_ref())
    });
    jen.step(25, move |w, st| {
        if w != designated.index() {
            return Ok(());
        }
        let mut bf_h = st
            .local_bf
            .take()
            .ok_or_else(|| HybridError::exec("designated worker produced no local BF_H"))?;
        let received = st.mailbox.take_stream(StreamTag::HdfsBloom, num_jen - 1)?;
        for bytes in &received.blooms {
            bf_h.merge(&BloomFilter::from_bytes(bytes)?)?;
        }
        let bytes = bf_h.to_bytes();
        for db_ep in sys.fabric.db_endpoints() {
            st.mailbox
                .send_bloom(db_ep, StreamTag::HdfsBloom, bytes.clone())?;
            st.mailbox.send_eos(db_ep, StreamTag::HdfsBloom)?;
        }
        Ok(())
    });
    db.step(30, move |w, st| {
        let got = st.mailbox.take_stream(StreamTag::HdfsBloom, 1)?;
        let bf = got
            .blooms
            .first()
            .map(|b| BloomFilter::from_bytes(b))
            .transpose()?
            .ok_or_else(|| HybridError::Net("BF_H never arrived".into()))?;
        let materialized = st.part.take().expect("T' injected from prescan");
        let t_second = {
            let _permit = driver.compute_permit();
            let part = match sys.config.zigzag_reaccess {
                ZigzagReaccess::Materialize => materialized,
                ZigzagReaccess::IndexReaccess => sys.db.worker(w).scan_filter_project(
                    &query.db_table,
                    &query.db_pred,
                    &query.db_proj,
                )?,
            };
            let apply_span = sys.tracer.start(format!("db-{w}"), Stage::BloomApply);
            let (t_second, _) = filter_batch(&part, query.db_key, &bf)?;
            apply_span.done(0, part.num_rows() as u64);
            t_second
        };
        sys.metrics
            .add("db.bloom.t_rows_after_bfh", t_second.num_rows() as u64);
        db_route_to_jen(sys, query, st, w, &t_second, salt.as_ref())
    });
    jen.step(40, move |w, st| {
        jen_recv_build(sys, query, driver, st, w, l_schema)
    });
    jen.step(42, move |w, st| {
        jen_probe_aggregate(sys, query, driver, st, w, t_schema)
    });
    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 50)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}

/// Broadcast from the observation point (§3.2 step 2+). A bloomed
/// prescan's `L'` blocks only lack rows that could never join `T'`, so
/// probing them against the full broadcast `T'` is result-identical.
fn from_prescan_broadcast(
    sys: &HybridSystem,
    query: &HybridQuery,
    pre: PrescanData,
) -> Result<Batch> {
    let driver = &Driver::from_config(&sys.config);
    let num_db = sys.config.db_workers;
    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;

    let PrescanData {
        t_parts, l_blocks, ..
    } = pre;
    let mut db_states = db_tasks(sys, driver)?;
    for (st, part) in db_states.iter_mut().zip(t_parts) {
        st.part = Some(part);
    }
    let mut jen_states = jen_tasks(sys, driver)?;
    for (st, blocks) in jen_states.iter_mut().zip(l_blocks) {
        st.scanned = Some(blocks);
    }
    let mut db = TaskSet::new("db", db_states);
    let mut jen = TaskSet::new("jen", jen_states);

    db.step(20, move |w, st| {
        let part = st.part.take().expect("T' injected from prescan");
        let jen_eps = sys.fabric.jen_endpoints();
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        for &dst in &jen_eps {
            st.mailbox.send_data(dst, StreamTag::DbData, &part)?;
            st.mailbox.send_eos(dst, StreamTag::DbData)?;
        }
        span.done(
            part.serialized_bytes() as u64 * jen_eps.len() as u64,
            part.num_rows() as u64 * jen_eps.len() as u64,
        );
        Ok(())
    });
    jen.step(30, move |w, st| {
        let worker = &sys.jen_workers[w];
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let got = st.mailbox.take_stream(StreamTag::DbData, num_db)?;
        let recv_rows: u64 = got.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);

        let _permit = driver.compute_permit();
        let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
        let mut joiner = HashJoiner::new(t_schema.clone(), query.db_key);
        for b in got.batches {
            joiner.build(b)?;
        }
        build_span.done(0, recv_rows);
        let l_share = Batch::concat(l_schema.clone(), &st.scanned.take().unwrap_or_default())?;
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe(&l_share, query.hdfs_key)?;
        probe_span.done(0, l_share.num_rows() as u64);
        let joined = match &query.post_predicate {
            Some(p) => {
                let mask = p.eval_predicate(&joined)?;
                joined.filter(&mask)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let groups = query.group_expr.eval_i64(&joined)?;
        let mut agg = HashAggregator::new(query.aggs.clone());
        agg.update(&groups, &joined)?;
        st.partial = Some(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
        Ok(())
    });
    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 40)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}

/// DB-side (±BF) from the observation point (§3.1 step 3+): the parked
/// `L'` blocks ship to their group's DB worker and the database's own
/// optimizer finishes the join.
fn from_prescan_db_side(
    sys: &HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
    pre: PrescanData,
) -> Result<Batch> {
    let driver = &Driver::from_config(&sys.config);
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    let groups = sys.coordinator.group_workers_for_db(num_db);
    let mut db_of_jen: Vec<Option<usize>> = vec![None; num_jen];
    for (db_idx, group) in groups.iter().enumerate() {
        for wid in group {
            db_of_jen[wid.index()] = Some(db_idx);
        }
    }
    let expected: Vec<usize> = groups.iter().map(|g| g.len()).collect();
    let db_of_jen = &db_of_jen;
    let expected = &expected;

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let hdfs_out_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let need_bf = use_bloom && !pre.bloomed;
    let bf_bytes = &if need_bf {
        Some(restart_bloom_bytes(sys, query, &pre.t_parts)?)
    } else {
        None
    };

    let PrescanData {
        t_parts, l_blocks, ..
    } = pre;
    let mut db_states = db_tasks(sys, driver)?;
    for (st, part) in db_states.iter_mut().zip(t_parts) {
        st.part = Some(part);
    }
    let mut jen_states = jen_tasks(sys, driver)?;
    for (st, blocks) in jen_states.iter_mut().zip(l_blocks) {
        st.scanned = Some(blocks);
    }
    let mut db = TaskSet::new("db", db_states);
    let mut jen = TaskSet::new("jen", jen_states);

    if need_bf {
        db.step(15, move |w, st| {
            if w == 0 {
                db_multicast_bloom_bytes(sys, st, bf_bytes.as_ref().expect("built when need_bf"))
            } else {
                Ok(())
            }
        });
    }
    jen.step(20, move |w, st| {
        let Some(db_idx) = db_of_jen[w] else {
            return Ok(());
        };
        let blocks = if need_bf {
            take_bf_and_filter_blocks(sys, query, st, w)?
        } else {
            st.scanned.take().unwrap_or_default()
        };
        let batch = Batch::concat(hdfs_out_schema.clone(), &blocks)?;
        let dst = Endpoint::Db(DbWorkerId(db_idx));
        let span = sys
            .tracer
            .start(sys.jen_workers[w].span_label(), Stage::ShuffleSend);
        st.mailbox.send_data(dst, StreamTag::HdfsData, &batch)?;
        st.mailbox.send_eos(dst, StreamTag::HdfsData)?;
        span.done(batch.serialized_bytes() as u64, batch.num_rows() as u64);
        Ok(())
    });
    db.step(30, move |w, st| {
        let n = expected.get(w).copied().unwrap_or(0);
        st.landed = Some(if n == 0 {
            Batch::empty(hdfs_out_schema.clone())
        } else {
            let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleRecv);
            let got = st.mailbox.take_stream(StreamTag::HdfsData, n)?;
            let landed = Batch::concat(hdfs_out_schema.clone(), &got.batches)?;
            span.done(landed.serialized_bytes() as u64, landed.num_rows() as u64);
            landed
        });
        Ok(())
    });

    let (mut db_states, _jen_states) = driver.run_pair(db, jen)?;

    let mut parts: Vec<Batch> = Vec::with_capacity(num_db);
    let mut landed: Vec<Batch> = Vec::with_capacity(num_db);
    for st in &mut db_states {
        parts.push(st.part.take().expect("T' injected from prescan"));
        landed.push(st.landed.take().expect("HDFS data landed in step 30"));
    }
    let spec = DbJoinSpec {
        left_key: query.db_key,
        right_key: query.hdfs_key,
        post_predicate: query.post_predicate.clone(),
        group_expr: query.group_expr.clone(),
        aggs: query.aggs.clone(),
    };
    let join_span = sys.tracer.start("db", Stage::Probe);
    let (result, choice) = sys.db.join_and_aggregate(&parts, &landed, &spec)?;
    join_span.done(0, result.num_rows() as u64);
    sys.metrics
        .incr(&format!("db.join.plan.{choice:?}").to_lowercase());
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::system::SystemConfig;
    use hybrid_bloom::BloomParams;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::expr::Expr;
    use hybrid_common::hash::splitmix64;
    use hybrid_common::ops::AggSpec;
    use hybrid_common::schema::Schema;
    use hybrid_storage::FileFormat;

    fn t_schema() -> Schema {
        Schema::from_pairs(&[
            ("uniqKey", DataType::I64),
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("tdate", DataType::Date),
        ])
    }

    fn l_schema() -> Schema {
        Schema::from_pairs(&[
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("ldate", DataType::Date),
            ("grp", DataType::Utf8),
        ])
    }

    fn t_data() -> Batch {
        let n = 400usize;
        Batch::new(
            t_schema(),
            vec![
                Column::I64((0..n as i64).collect()),
                Column::I32((0..n).map(|i| (splitmix64(i as u64) % 50) as i32).collect()),
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 7) % 100) as i32)
                        .collect(),
                ),
                Column::Date(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 9) % 30) as i32)
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    /// L over `key_space` join keys — the paper fixture uses 80 (dense
    /// overlap with T's 50); the replan fixture uses 400 (sparse overlap,
    /// so the Bloom filter pays for itself decisively).
    fn l_data(key_space: u64) -> Batch {
        let n = 1200usize;
        Batch::new(
            l_schema(),
            vec![
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 100) % key_space) as i32)
                        .collect(),
                ),
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 101) % 100) as i32)
                        .collect(),
                ),
                Column::Date(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 102) % 30) as i32)
                        .collect(),
                ),
                Column::Utf8(
                    (0..n)
                        .map(|i| format!("url_{}/p", splitmix64(i as u64 ^ 103) % 7))
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    fn paper_query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(2, 49),
            db_proj: vec![1, 3],
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 59),
            hdfs_proj: vec![0, 2, 3],
            hdfs_key: 0,
            post_predicate: Some(
                Expr::col(1)
                    .sub(Expr::col(3))
                    .ge(Expr::lit_i64(0))
                    .and(Expr::col(1).sub(Expr::col(3)).le(Expr::lit_i64(1))),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(4))),
            aggs: vec![AggSpec::Count],
            bloom: BloomParams::new(1 << 12, 2).unwrap(),
        }
    }

    fn system(l_key_space: u64, replan_threshold: Option<f64>) -> HybridSystem {
        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 100;
        cfg.replan_threshold = replan_threshold;
        let mut sys = HybridSystem::new(cfg).unwrap();
        sys.load_db_table("T", 0, t_data()).unwrap();
        sys.create_db_index("T", &[2, 1]).unwrap();
        sys.load_hdfs_table("L", FileFormat::Columnar, l_schema(), &l_data(l_key_space))
            .unwrap();
        sys
    }

    /// Rough-but-sane estimates for the paper fixture, as a planner with
    /// decent statistics would produce them.
    fn honest_estimates(sys: &HybridSystem, query: &HybridQuery) -> QueryEstimates {
        let pre = prescan(sys, query, false).unwrap();
        let obs = observe(query, &pre).unwrap();
        QueryEstimates {
            t_prime_bytes: obs.t_prime_bytes,
            l_prime_bytes: obs.l_prime_bytes,
            st: obs.st,
            sl: obs.sl,
            num_jen_workers: sys.config.jen_workers,
            bloom_bytes: query.bloom.wire_bytes() as u64,
            shuffle_skew: obs.shuffle_skew,
            mem_budget_per_worker: None,
        }
    }

    #[test]
    fn err_ratio_edges() {
        assert_eq!(err_ratio(0.0, 0.0), 1.0);
        assert_eq!(err_ratio(5.0, 0.0), MAX_ERR_RATIO);
        assert_eq!(err_ratio(0.0, 5.0), MAX_ERR_RATIO);
        assert_eq!(err_ratio(4.0, 2.0), 2.0);
        assert_eq!(err_ratio(2.0, 4.0), 2.0);
        assert_eq!(err_ratio(3.0, 3.0), 1.0);
        // overflow-scale mismatches stay clamped and finite
        assert_eq!(err_ratio(1e12, 1.0), MAX_ERR_RATIO);
    }

    #[test]
    fn bloomed_observation_compares_post_filter_expectations() {
        let est = QueryEstimates {
            t_prime_bytes: 10_000,
            l_prime_bytes: 1_000_000,
            st: 0.2,
            sl: 0.05,
            num_jen_workers: 4,
            bloom_bytes: 200,
            shuffle_skew: 1.1,
            mem_budget_per_worker: None,
        };
        let controller = ReplanController::new(1.5, est);
        // What a bloomed prescan observes when the estimate was honest:
        // L' shrunk to ~SL' of its estimated bytes, surviving keys all
        // join (sl ≈ 1), and the few survivors hash unevenly.
        let obs = Observation {
            t_prime_bytes: 10_000,
            l_prime_bytes: 50_000,
            st: 0.2,
            sl: 1.0,
            shuffle_skew: 3.0,
        };
        assert!(
            controller.errors(&obs, true).worst() < 1.1,
            "honest low-SL' estimates must not read as divergence after the filter"
        );
        // The same observation from an *unfiltered* prescan is a real miss
        // on every axis.
        assert!(controller.errors(&obs, false).worst() > 1.5);
    }

    #[test]
    fn uses_bf_db_table() {
        assert!(uses_bf_db(JoinAlgorithm::DbSide { bloom: true }));
        assert!(uses_bf_db(JoinAlgorithm::Repartition { bloom: true }));
        assert!(uses_bf_db(JoinAlgorithm::Zigzag));
        assert!(!uses_bf_db(JoinAlgorithm::DbSide { bloom: false }));
        assert!(!uses_bf_db(JoinAlgorithm::Repartition { bloom: false }));
        assert!(!uses_bf_db(JoinAlgorithm::Broadcast));
        assert!(!uses_bf_db(JoinAlgorithm::SemiJoin));
        assert!(!uses_bf_db(JoinAlgorithm::PerfJoin));
    }

    #[test]
    fn pick_replacement_applies_hysteresis() {
        // Selective join keys make repartition(BF) far cheaper than plain
        // repartition (3t + 0.7·l·sl + bf·n vs 3t + 0.7·l). T' is big
        // enough that broadcast (3t·n) stays out of the race, and sl is
        // moderate enough that DB-side ingest (2·l·sl) loses too; st = 1
        // leaves zigzag exactly one bf·n behind repartition(BF).
        let est = QueryEstimates {
            t_prime_bytes: 70_000,
            l_prime_bytes: 1_000_000,
            st: 1.0,
            sl: 0.2,
            num_jen_workers: 4,
            bloom_bytes: 512,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        };
        let picked = pick_replacement(&est, JoinAlgorithm::Repartition { bloom: false }, 0.0)
            .expect("a decisive win must replan");
        assert_eq!(picked.0, JoinAlgorithm::Repartition { bloom: true });
        assert!(picked.1 * REPLAN_HYSTERESIS < picked.2);
        // When the current plan is already the winner, stay put.
        assert!(pick_replacement(&est, JoinAlgorithm::Repartition { bloom: true }, 0.0).is_none());
        // A marginal edge under the hysteresis factor also stays put:
        // sl near 1 makes the BF variant only epsilon-different.
        let close = QueryEstimates { sl: 0.99, ..est };
        assert!(
            pick_replacement(&close, JoinAlgorithm::Repartition { bloom: false }, 0.0).is_none()
        );
    }

    #[test]
    fn bf_db_discount_credits_bloom_users_only() {
        let est = QueryEstimates {
            t_prime_bytes: 1_000,
            l_prime_bytes: 100_000,
            st: 0.5,
            sl: 0.5,
            num_jen_workers: 4,
            bloom_bytes: 512,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        };
        let discount = (est.bloom_bytes * est.num_jen_workers as u64) as f64;
        // Discounted candidates drop by exactly bf·n; plain ones don't.
        for (alg, cost) in estimated_costs(&est) {
            let want = if uses_bf_db(alg) {
                (cost - discount).max(0.0)
            } else {
                cost
            };
            // pick_replacement's internal `remaining` is what we assert on,
            // via a degenerate call that filters everything but `alg` out:
            // compare a two-way race between alg and itself-as-current.
            let got = pick_replacement(&est, alg, discount)
                .map(|(_, _, current)| current)
                .unwrap_or_else(|| {
                    // no replacement won — recompute the current side alone
                    if uses_bf_db(alg) {
                        (cost_of(alg, &est).unwrap() - discount).max(0.0)
                    } else {
                        cost_of(alg, &est).unwrap()
                    }
                });
            assert!((got - want).abs() < 1e-9, "{alg:?}");
        }
    }

    #[test]
    fn observation_measures_exact_actuals() {
        let query = paper_query();
        let sys = system(80, None);
        let pre = prescan(&sys, &query, false).unwrap();
        let obs = observe(&query, &pre).unwrap();
        // T: 400 rows, corPred %100 ≤ 49; L: keys 0..80 vs T keys 0..50.
        assert!(obs.t_prime_bytes > 0 && obs.l_prime_bytes > 0);
        assert!(obs.st > 0.9, "T keys 0..50 all appear in L keys 0..80");
        assert!(
            obs.sl > 0.5 && obs.sl < 0.8,
            "~50/80 of L keys join T: {}",
            obs.sl
        );
        assert!(obs.shuffle_skew >= 1.0);
        // A bloomed prescan observes the *remaining* work: L' shrinks and
        // its surviving keys (modulo false positives) all join.
        let bloomed = prescan(&sys, &query, true).unwrap();
        let obs_bf = observe(&query, &bloomed).unwrap();
        assert!(obs_bf.l_prime_bytes <= obs.l_prime_bytes);
        assert!(obs_bf.sl >= obs.sl);
    }

    #[test]
    fn threshold_off_is_plain_run() {
        let query = paper_query();
        let est = {
            let sys = system(80, None);
            honest_estimates(&sys, &query)
        };
        let mut sys = system(80, None);
        let plain = crate::algorithms::run(&mut sys, &query, JoinAlgorithm::Zigzag).unwrap();
        let mut sys2 = system(80, None);
        let adaptive = run_adaptive(&mut sys2, &query, JoinAlgorithm::Zigzag, &est).unwrap();
        assert_eq!(adaptive.result, plain.result);
        assert_eq!(
            adaptive.snapshot, plain.snapshot,
            "threshold None must leave the metric snapshot byte-identical"
        );
        assert_eq!(sys2.metrics.get("advisor.replans"), 0);
        assert_eq!(sys2.metrics.get("advisor.est_error_x1000.scan"), 0);
    }

    #[test]
    fn huge_threshold_continues_every_paper_variant() {
        let query = paper_query();
        let expected = run_reference(&t_data(), &l_data(80), &query).unwrap();
        assert!(expected.num_rows() > 0);
        let est = {
            let sys = system(80, None);
            honest_estimates(&sys, &query)
        };
        for alg in JoinAlgorithm::paper_variants() {
            let mut sys = system(80, Some(1e9));
            let out = run_adaptive(&mut sys, &query, alg, &est).unwrap();
            assert_eq!(out.result, expected, "{alg} diverged on the continue path");
            assert_eq!(sys.metrics.get("advisor.replans"), 0, "{alg} replanned");
            assert_eq!(
                sys.metrics.get("advisor.replan_considered"),
                0,
                "{alg} considered a replan under a huge threshold"
            );
            assert!(
                sys.metrics.get("advisor.est_error_x1000.scan") >= 1000,
                "{alg} must meter its estimation error"
            );
        }
    }

    #[test]
    fn unpriced_strategies_run_unobserved() {
        let query = paper_query();
        let expected = run_reference(&t_data(), &l_data(80), &query).unwrap();
        let est = {
            let sys = system(80, None);
            honest_estimates(&sys, &query)
        };
        let mut sys = system(80, Some(1.01));
        let out = run_adaptive(&mut sys, &query, JoinAlgorithm::SemiJoin, &est).unwrap();
        assert_eq!(out.result, expected);
        assert_eq!(sys.metrics.get("advisor.est_error_x1000.scan"), 0);
        assert_eq!(sys.metrics.get("advisor.replans"), 0);
    }

    /// Every (prescan bloomed?, target) combination resumes to the
    /// reference result — the full remainder matrix, including the
    /// cross-restart cases where a plain prescan restarts as a
    /// Bloom-using plan (filter built from the parked `T'`) and where a
    /// bloomed prescan restarts as a plain plan (already-reduced `L'` is
    /// result-identical).
    #[test]
    fn from_prescan_matrix_matches_reference() {
        let query = paper_query();
        let expected = run_reference(&t_data(), &l_data(80), &query).unwrap();
        assert!(expected.num_rows() > 0);
        for bloomed in [false, true] {
            for target in JoinAlgorithm::paper_variants() {
                let mut sys = system(80, None);
                prepare_run(&mut sys, &query).unwrap();
                let pre = prescan(&sys, &query, bloomed).unwrap();
                let result = execute_from_prescan(&sys, &query, target, pre).unwrap();
                assert_eq!(
                    result, expected,
                    "target {target} from a bloomed={bloomed} prescan diverged"
                );
            }
        }
    }

    /// The end-to-end feedback loop: estimates that wildly overstate the
    /// join selectivity (claiming every L' key joins) pick plain
    /// repartition; the observation point measures sl ≈ 50/400, the
    /// divergence trips the threshold, and the corrected costs replan to
    /// a Bloom-using strategy — bit-identical result, exactly one replan.
    #[test]
    fn mis_estimated_workload_replans_once_to_the_reference_result() {
        let query = paper_query();
        let expected = run_reference(&t_data(), &l_data(400), &query).unwrap();
        assert!(expected.num_rows() > 0);
        let bogus = QueryEstimates {
            t_prime_bytes: 3_000,
            l_prime_bytes: 30_000,
            st: 1.0,
            sl: 1.0, // truth ≈ 0.125: the estimator claims no key filters
            num_jen_workers: 4,
            bloom_bytes: paper_query().bloom.wire_bytes() as u64,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        };
        let mut sys = system(400, Some(1.5));
        let out = run_adaptive(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
            &bogus,
        )
        .unwrap();
        assert_eq!(out.result, expected, "replanned run diverged");
        assert_eq!(sys.metrics.get("advisor.replans"), 1);
        assert_eq!(sys.metrics.get("advisor.replan_considered"), 1);
        assert!(
            out.timeline
                .spans
                .iter()
                .any(|s| s.stage == Stage::Replan && s.worker == "coordinator"),
            "the tracer must record the replan span"
        );
        // sanity: the controller really did swap strategies — a BF_DB (or
        // BF_H) phase ran, which plain repartition never has
        assert!(
            out.timeline
                .spans
                .iter()
                .any(|s| s.stage == Stage::BloomBuild),
            "the restarted plan must be a Bloom-using strategy"
        );
    }

    /// A well-estimated workload never trips the controller even at a
    /// tight threshold.
    #[test]
    fn honest_estimates_never_replan() {
        let query = paper_query();
        let est = {
            let sys = system(80, None);
            honest_estimates(&sys, &query)
        };
        let expected = run_reference(&t_data(), &l_data(80), &query).unwrap();
        let mut sys = system(80, Some(1.5));
        let out = run_adaptive(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
            &est,
        )
        .unwrap();
        assert_eq!(out.result, expected);
        assert_eq!(sys.metrics.get("advisor.replans"), 0);
        assert_eq!(sys.metrics.get("advisor.replan_considered"), 0);
    }

    /// After a replan the parent fabric namespace is restored and the
    /// restart's sub-namespace is gone — a second query on the same
    /// system (including another replan) works.
    #[test]
    fn replan_namespace_is_reusable() {
        let query = paper_query();
        let bogus = QueryEstimates {
            t_prime_bytes: 3_000,
            l_prime_bytes: 30_000,
            st: 1.0,
            sl: 1.0,
            num_jen_workers: 4,
            bloom_bytes: paper_query().bloom.wire_bytes() as u64,
            shuffle_skew: 1.0,
            mem_budget_per_worker: None,
        };
        let mut sys = system(400, Some(1.5));
        let ns_before = sys.fabric.ns();
        let first = run_adaptive(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
            &bogus,
        )
        .unwrap();
        assert_eq!(sys.fabric.ns(), ns_before, "parent fabric must be restored");
        let second = run_adaptive(
            &mut sys,
            &query,
            JoinAlgorithm::Repartition { bloom: false },
            &bogus,
        )
        .unwrap();
        assert_eq!(first.result, second.result);
        assert_eq!(
            sys.metrics.get("advisor.replans"),
            1,
            "metrics reset per run; the second run replans once again"
        );
    }
}
