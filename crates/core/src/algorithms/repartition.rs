//! HDFS-side repartition join (±Bloom filter) — paper §3.3, Figure 3.
//!
//! The database and JEN agree on a hash function over the join key. DB
//! workers ship `T'` directly to the owning JEN worker (no second shuffle on
//! arrival); JEN workers scan `L`, optionally apply `BF_DB`, and shuffle the
//! survivors among themselves with the same hash. Each JEN worker then joins
//! its partition locally (hash table built on the HDFS side, as in §4.4),
//! aggregates partially, and the designated worker returns the final result.

use crate::algorithms::{
    db_apply_local, hdfs_side_final_aggregation, send_data, send_eos, Mailbox,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_bloom::BloomFilter;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::ops::{partition_by_key, HashAggregator};
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::LocalJoiner;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, Message, StreamTag};

pub(crate) fn execute(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
) -> Result<Batch> {
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    // Step 1: T' per DB worker (+ global BF_DB if requested).
    let t_prime = db_apply_local(sys, query)?;
    if use_bloom {
        let bf_span = sys.tracer.start("db", Stage::BloomBuild);
        let bf = sys.db.build_global_bloom(
            &query.db_table,
            &query.db_pred,
            query.db_key_base(),
            query.bloom,
        )?;
        let bytes = bf.to_bytes();
        bf_span.done(bytes.len() as u64, 0);
        let db0 = Endpoint::Db(DbWorkerId(0));
        for jen in sys.fabric.jen_endpoints() {
            sys.fabric.send(
                db0,
                jen,
                Message::Bloom {
                    stream: StreamTag::DbBloom,
                    bytes: bytes.clone(),
                },
            )?;
            send_eos(sys, db0, jen, StreamTag::DbBloom)?;
        }
    }

    // Step 2: DB workers route T' with the agreed hash — data lands on the
    // JEN worker that will join it, no re-shuffle needed (§3.3).
    for (w, part) in t_prime.iter().enumerate() {
        let src = Endpoint::Db(DbWorkerId(w));
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        let routed = partition_by_key(part, query.db_key, num_jen, agreed_shuffle_partition)?;
        for (jen_idx, piece) in routed.into_iter().enumerate() {
            let dst = Endpoint::Jen(hybrid_common::ids::JenWorkerId(jen_idx));
            send_data(sys, src, dst, StreamTag::DbData, &piece)?;
            send_eos(sys, src, dst, StreamTag::DbData)?;
        }
        span.done(part.serialized_bytes() as u64, part.num_rows() as u64);
    }

    // Step 3: JEN workers scan (applying BF_DB if present) and shuffle the
    // filtered HDFS data with the same hash. The local partition stays put.
    let plan = sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: use_bloom.then(|| query.hdfs_key_base()),
    };
    let l_schema = plan.table.schema.project(&query.hdfs_proj)?;
    // One mailbox per JEN worker for the whole run: messages of later
    // streams that arrive early are buffered, never lost.
    let mut mailboxes: Vec<Mailbox> = sys
        .jen_workers
        .iter()
        .map(|w| Mailbox::new(sys, Endpoint::Jen(w.id())))
        .collect::<Result<_>>()?;
    let mut local_parts: Vec<Batch> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let me = Endpoint::Jen(worker.id());
        let bloom = if use_bloom {
            let got = mailboxes[w].take_stream(StreamTag::DbBloom, 1)?;
            got.blooms
                .first()
                .map(|b| BloomFilter::from_bytes(b))
                .transpose()?
        } else {
            None
        };
        let (l_share, _) = scan_blocks_pipelined(
            worker,
            &plan.table,
            &plan.blocks[w],
            &scan_spec,
            bloom.as_ref(),
        )?;
        let span = sys.tracer.start(worker.span_label(), Stage::ShuffleSend);
        let sent_rows = l_share.num_rows() as u64;
        let sent_bytes = l_share.serialized_bytes() as u64;
        let routed = partition_by_key(&l_share, query.hdfs_key, num_jen, agreed_shuffle_partition)?;
        let mut mine = Batch::empty(l_schema.clone());
        for (dst_idx, piece) in routed.into_iter().enumerate() {
            if dst_idx == w {
                mine = piece; // local partition: no network traffic
            } else {
                let dst = Endpoint::Jen(hybrid_common::ids::JenWorkerId(dst_idx));
                send_data(sys, me, dst, StreamTag::HdfsShuffle, &piece)?;
                send_eos(sys, me, dst, StreamTag::HdfsShuffle)?;
            }
        }
        span.done(sent_bytes, sent_rows);
        local_parts.push(mine);
    }

    // Step 4: each JEN worker builds its hash table from the shuffled HDFS
    // data (local + received) and probes with the database tuples; layout
    // is L' ++ T', so the canonical expressions are remapped.
    let post_pred = query.post_predicate_hdfs_layout();
    let group_expr = query.group_expr_hdfs_layout();
    let hdfs_aggs = query.aggs_hdfs_layout();
    let mut partials: Vec<Batch> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let shuffled = mailboxes[w].take_stream(StreamTag::HdfsShuffle, num_jen - 1)?;
        let recv_rows: u64 = shuffled.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);
        // the local join: in-memory by default, grace-hash with spilling
        // when the engine is configured with a build-side memory budget
        let mut joiner = LocalJoiner::new(
            l_schema.clone(),
            query.hdfs_key,
            sys.config.jen_memory_limit_rows,
            sys.metrics.clone(),
        )?;
        let built_rows = local_parts[w].num_rows() as u64 + recv_rows;
        let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
        joiner.build(std::mem::replace(
            &mut local_parts[w],
            Batch::empty(l_schema.clone()),
        ))?;
        for b in shuffled.batches {
            joiner.build(b)?;
        }
        build_span.done(0, built_rows);
        let db_data = mailboxes[w].take_stream(StreamTag::DbData, num_db)?;
        let t_schema = t_prime[0].schema().clone();
        let probe_rows: u64 = db_data.batches.iter().map(|b| b.num_rows() as u64).sum();
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe_all(&t_schema, db_data.batches, query.db_key)?;
        probe_span.done(0, probe_rows);
        let joined = match &post_pred {
            Some(p) => {
                let mask = p.eval_predicate(&joined)?;
                joined.filter(&mask)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let mut agg = HashAggregator::new(hdfs_aggs.clone());
        let groups = group_expr.eval_i64(&joined)?;
        agg.update(&groups, &joined)?;
        partials.push(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
    }

    // Steps 5–6: final aggregation + return to the database.
    hdfs_side_final_aggregation(sys, query, partials)
}
