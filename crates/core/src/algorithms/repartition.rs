//! HDFS-side repartition join (±Bloom filter) — paper §3.3, Figure 3.
//!
//! The database and JEN agree on a hash function over the join key. DB
//! workers ship `T'` directly to the owning JEN worker (no second shuffle on
//! arrival); JEN workers scan `L`, optionally apply `BF_DB`, and shuffle the
//! survivors among themselves with the same hash. Each JEN worker then joins
//! its partition locally (hash table built on the HDFS side, as in §4.4),
//! aggregates partially, and the designated worker returns the final result.

use crate::algorithms::{
    add_final_aggregation_steps, db_build_and_multicast_bloom, db_scan_step, db_tasks,
    jen_probe_aggregate, jen_recv_build, jen_shuffle_share, jen_take_bloom, jen_tasks,
    t_prime_schema, take_result, Driver, TaskSet,
};
use crate::query::HybridQuery;
use crate::skew::SaltRouter;
use crate::system::HybridSystem;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_jen::pipeline::scan_blocks_batched;
use hybrid_jen::ScanSpec;
use hybrid_net::StreamTag;

pub(crate) fn execute(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: use_bloom.then(|| query.hdfs_key_base()),
    };
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;
    // Heavy-hitter detection (None unless `salt_buckets` is configured and
    // a hot key clears the threshold) — both sides must agree on it.
    let salt = &SaltRouter::detect(sys, query)?;

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    // Step 1: T' per DB worker (+ global BF_DB multicast from worker 0).
    db.step(10, move |w, st| {
        st.part = Some(db_scan_step(sys, query, driver, w)?);
        Ok(())
    });
    if use_bloom {
        db.step(12, move |w, st| {
            if w == 0 {
                db_build_and_multicast_bloom(sys, query, st)
            } else {
                Ok(())
            }
        });
    }

    // Step 2: DB workers route T' with the agreed hash — data lands on the
    // JEN worker that will join it, no re-shuffle needed (§3.3).
    db.step(14, move |w, st| {
        let part = st.part.take().expect("T' scanned in step 10");
        crate::algorithms::db_route_to_jen(sys, query, st, w, &part, salt.as_ref())
    });

    // Step 3: JEN workers scan (applying BF_DB if present) and shuffle the
    // filtered HDFS data with the same hash, one block batch at a time —
    // the share is never concatenated. The local partition stays put.
    jen.step(20, move |w, st| {
        let bloom = if use_bloom {
            jen_take_bloom(st, StreamTag::DbBloom)?
        } else {
            None
        };
        let l_blocks = {
            let _permit = driver.compute_permit();
            scan_blocks_batched(
                &sys.jen_workers[w],
                &plan.table,
                &plan.blocks[w],
                scan_spec,
                bloom.as_ref(),
            )?
            .0
        };
        jen_shuffle_share(sys, query, st, w, l_blocks, l_schema, salt.as_ref())
    });

    // Step 4: each JEN worker builds its hash table from the shuffled HDFS
    // data (local + received), then probes with the database tuples. Two
    // driver steps, so a fault plan can kill a worker at the build/probe
    // boundary — after a grace join has spilled partitions to disk but
    // before it reads them back.
    jen.step(30, move |w, st| {
        jen_recv_build(sys, query, driver, st, w, l_schema)
    });
    jen.step(32, move |w, st| {
        jen_probe_aggregate(sys, query, driver, st, w, t_schema)
    });

    // Steps 5–6: final aggregation + return to the database.
    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 40)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}
