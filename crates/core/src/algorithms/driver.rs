//! The parallel execution driver: every DB worker and every JEN worker
//! runs its phase steps on its own OS thread.
//!
//! An algorithm describes itself as two [`TaskSet`]s — one per cluster —
//! whose steps carry a global sequence number. With `threads == 1` the
//! driver replays the steps in ascending sequence order, worker 0..n within
//! each step: exactly the order the sequential implementations used, so a
//! single-threaded run is bit-for-bit the old behavior. With `threads > 1`
//! it spawns one scoped thread per worker ([`std::thread::scope`], no new
//! dependencies); each thread walks its own step list in sequence order and
//! workers synchronize only through fabric messages. A counting semaphore
//! bounds how many workers occupy a *compute* section at once, so
//! `--threads 2` and `--threads 8` genuinely differ on a 30-worker cluster.
//!
//! Error propagation: the first failing step trips a shared [`CancelToken`];
//! peers blocked in a mailbox receive notice it within one poll slice and
//! abort with [`HybridError::Cancelled`]. The driver reports the first
//! *root-cause* error (never a secondary cancellation) and catches worker
//! panics, converting them into [`HybridError::Exec`] — no poisoned mutexes,
//! no orphan threads ([`std::thread::scope`] joins everything).

use crate::system::SystemConfig;
use hybrid_common::error::{HybridError, Result};
use hybrid_net::{Straggler, WorkerKill};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shared cancellation flag: set once by the first failing worker, polled
/// by everyone else (steps between phases, mailboxes inside blocking waits).
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A counting semaphore (std has none): caps concurrently *computing*
/// workers at the configured thread budget.
struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    fn new(n: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(n),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *p == 0 {
            p = self.freed.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.freed.notify_one();
    }
}

/// RAII guard for one compute slot. IMPORTANT: never hold one across a
/// blocking fabric send or receive — a worker waiting on the network while
/// occupying a slot could starve the workers it is waiting *for*.
pub struct ComputePermit<'a> {
    sem: Option<&'a Semaphore>,
}

impl Drop for ComputePermit<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.sem {
            s.release();
        }
    }
}

/// One step of one task set: called once per worker with that worker's
/// mutable state. `Sync` because in parallel mode every worker thread calls
/// the same closure (on disjoint states).
pub type StepFn<'env, S> = Box<dyn Fn(usize, &mut S) -> Result<()> + Sync + 'env>;

/// A cluster's share of an algorithm: per-worker states plus a list of
/// `(sequence, step)` pairs. Sequence numbers are global across the DB and
/// JEN task sets of one run; they define the sequential replay order.
pub struct TaskSet<'env, S> {
    label: &'static str,
    states: Vec<S>,
    steps: Vec<(u32, StepFn<'env, S>)>,
}

impl<'env, S> TaskSet<'env, S> {
    /// `label` names the cluster in error messages ("db" / "jen").
    pub fn new(label: &'static str, states: Vec<S>) -> TaskSet<'env, S> {
        TaskSet {
            label,
            states,
            steps: Vec::new(),
        }
    }

    /// Append a step at sequence number `seq`. Steps sharing a `seq` run in
    /// insertion order (the sort is stable); across the two task sets of a
    /// run, ties go to the first (DB) set.
    pub fn step(&mut self, seq: u32, f: impl Fn(usize, &mut S) -> Result<()> + Sync + 'env) {
        self.steps.push((seq, Box::new(f)));
    }
}

/// The execution driver. One per algorithm run; algorithms borrow it inside
/// their step closures for [`Driver::compute_permit`] and hand their
/// mailboxes its [`CancelToken`].
pub struct Driver {
    threads: usize,
    cancel: CancelToken,
    sem: Semaphore,
    kill: Option<WorkerKill>,
    straggler: Option<Straggler>,
}

impl Driver {
    pub fn new(threads: usize) -> Driver {
        let threads = threads.max(1);
        Driver {
            threads,
            cancel: CancelToken::new(),
            sem: Semaphore::new(threads),
            kill: None,
            straggler: None,
        }
    }

    pub fn from_config(config: &SystemConfig) -> Driver {
        let mut driver = Driver::new(config.threads);
        if let Some(spec) = &config.fault_spec {
            driver.kill = spec.kill;
            driver.straggler = spec.straggler;
        }
        driver
    }

    /// The injected-kill error: the worker "crashed", so from the query's
    /// perspective its endpoint went away. Typed, so the chaos suite can
    /// match the variant instead of message text.
    fn kill_error(label: &str, w: usize) -> HybridError {
        HybridError::Disconnected {
            endpoint: format!("{label}-worker-{w}"),
            stream: None,
        }
    }

    /// Whether the configured kill lands on worker `w` of the `label` set
    /// at step ordinal `step` (index into that worker's sorted step list).
    fn kill_matches(kill: &Option<WorkerKill>, label: &str, w: usize, step: usize) -> bool {
        kill.as_ref()
            .is_some_and(|k| k.target.label() == label && k.worker == w && k.step == step)
    }

    /// The straggler delay for worker `w` of the `label` set, if any.
    fn straggle_delay(straggler: &Option<Straggler>, label: &str, w: usize) -> Option<Duration> {
        straggler
            .as_ref()
            .filter(|s| s.target.label() == label && s.worker == w)
            .map(|s| s.delay)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when workers run on their own threads.
    pub fn parallel(&self) -> bool {
        self.threads > 1
    }

    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Claim a compute slot (blocks until one frees up). Sequential runs
    /// short-circuit: one thread can never contend with itself.
    pub fn compute_permit(&self) -> ComputePermit<'_> {
        if !self.parallel() {
            return ComputePermit { sem: None };
        }
        self.sem.acquire();
        ComputePermit {
            sem: Some(&self.sem),
        }
    }

    /// Run a DB task set and a JEN task set to completion; returns the final
    /// per-worker states. On any failure every surviving worker is
    /// cancelled, all threads are joined, and the first root-cause error is
    /// returned.
    pub fn run_pair<'env, A, B>(
        &self,
        a: TaskSet<'env, A>,
        b: TaskSet<'env, B>,
    ) -> Result<(Vec<A>, Vec<B>)>
    where
        A: Send,
        B: Send,
    {
        if self.parallel() {
            self.run_parallel(a, b)
        } else {
            self.run_sequential(a, b)
        }
    }

    /// Replay in global sequence order, worker 0..n inside each step —
    /// byte-for-byte the pre-driver sequential execution. Fault hooks: a
    /// configured [`WorkerKill`] fires right before its victim's k-th step
    /// (steps are counted per set here, since every worker of a set walks
    /// the same list), a [`Straggler`] sleeps before each of its steps.
    fn run_sequential<'env, A, B>(
        &self,
        mut a: TaskSet<'env, A>,
        mut b: TaskSet<'env, B>,
    ) -> Result<(Vec<A>, Vec<B>)> {
        // (seq, set, index-within-set); stable sort keeps insertion order
        // for equal keys and puts set A first on sequence ties.
        let mut order: Vec<(u32, u8, usize)> = Vec::with_capacity(a.steps.len() + b.steps.len());
        order.extend(a.steps.iter().enumerate().map(|(i, (s, _))| (*s, 0u8, i)));
        order.extend(b.steps.iter().enumerate().map(|(i, (s, _))| (*s, 1u8, i)));
        order.sort_by_key(|&(s, which, _)| (s, which));
        // Per-set step ordinals: how many steps of each set have run so
        // far, i.e. the index of the current step in a worker's own list.
        let (mut done_a, mut done_b) = (0usize, 0usize);
        for (_, which, i) in order {
            if which == 0 {
                let f = &a.steps[i].1;
                for (w, st) in a.states.iter_mut().enumerate() {
                    if Self::kill_matches(&self.kill, a.label, w, done_a) {
                        return Err(Self::kill_error(a.label, w));
                    }
                    if let Some(d) = Self::straggle_delay(&self.straggler, a.label, w) {
                        std::thread::sleep(d);
                    }
                    f(w, st)?;
                }
                done_a += 1;
            } else {
                let f = &b.steps[i].1;
                for (w, st) in b.states.iter_mut().enumerate() {
                    if Self::kill_matches(&self.kill, b.label, w, done_b) {
                        return Err(Self::kill_error(b.label, w));
                    }
                    if let Some(d) = Self::straggle_delay(&self.straggler, b.label, w) {
                        std::thread::sleep(d);
                    }
                    f(w, st)?;
                }
                done_b += 1;
            }
        }
        Ok((a.states, b.states))
    }

    fn run_parallel<'env, A, B>(
        &self,
        mut a: TaskSet<'env, A>,
        mut b: TaskSet<'env, B>,
    ) -> Result<(Vec<A>, Vec<B>)>
    where
        A: Send,
        B: Send,
    {
        a.steps.sort_by_key(|(s, _)| *s);
        b.steps.sort_by_key(|(s, _)| *s);
        let (steps_a, steps_b) = (&a.steps, &b.steps);
        let (label_a, label_b) = (a.label, b.label);
        let cancel = &self.cancel;
        let (kill, straggler) = (&self.kill, &self.straggler);

        // Walk one worker's whole step list on its thread. Checking the
        // token *between* steps catches peers that failed while this worker
        // was computing; mailboxes catch failures mid-receive. An injected
        // kill fires before the victim's k-th step and trips the token so
        // peers blocked on the dead worker's traffic abort too; an injected
        // straggler sleeps before every step.
        fn drive<S>(
            steps: &[(u32, StepFn<'_, S>)],
            w: usize,
            mut st: S,
            label: &str,
            cancel: &CancelToken,
            kill: &Option<WorkerKill>,
            straggle: Option<Duration>,
        ) -> std::result::Result<S, HybridError> {
            for (step, (_, f)) in steps.iter().enumerate() {
                if Driver::kill_matches(kill, label, w, step) {
                    cancel.cancel();
                    return Err(Driver::kill_error(label, w));
                }
                if let Some(d) = straggle {
                    std::thread::sleep(d);
                }
                if cancel.is_cancelled() {
                    return Err(HybridError::Cancelled {
                        worker: format!("{label}-{w}"),
                    });
                }
                f(w, &mut st).inspect_err(|_| cancel.cancel())?;
            }
            Ok(st)
        }

        // Join every handle, converting panics into errors; a panicking
        // worker must still cancel its peers.
        fn collect<'scope, S>(
            handles: Vec<
                std::thread::ScopedJoinHandle<'scope, std::result::Result<S, HybridError>>,
            >,
            label: &str,
            cancel: &CancelToken,
        ) -> (Vec<S>, Vec<HybridError>) {
            let mut states = Vec::with_capacity(handles.len());
            let mut errors = Vec::new();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(st)) => states.push(st),
                    Ok(Err(e)) => errors.push(e),
                    Err(payload) => {
                        cancel.cancel();
                        errors.push(HybridError::Exec(format!(
                            "worker {label}-{w} panicked: {}",
                            panic_message(&payload)
                        )));
                    }
                }
            }
            (states, errors)
        }

        let (res_a, res_b) = std::thread::scope(|scope| {
            let handles_a: Vec<_> = a
                .states
                .drain(..)
                .enumerate()
                .map(|(w, st)| {
                    let straggle = Driver::straggle_delay(straggler, label_a, w);
                    scope.spawn(move || drive(steps_a, w, st, label_a, cancel, kill, straggle))
                })
                .collect();
            let handles_b: Vec<_> = b
                .states
                .drain(..)
                .enumerate()
                .map(|(w, st)| {
                    let straggle = Driver::straggle_delay(straggler, label_b, w);
                    scope.spawn(move || drive(steps_b, w, st, label_b, cancel, kill, straggle))
                })
                .collect();
            (
                collect(handles_a, label_a, cancel),
                collect(handles_b, label_b, cancel),
            )
        });
        let (states_a, mut errors) = res_a;
        let (states_b, errors_b) = res_b;
        errors.extend(errors_b);
        if errors.is_empty() {
            return Ok((states_a, states_b));
        }
        // Prefer the root cause: a Cancelled error only says "someone else
        // failed first" and is reported only if nothing better exists.
        let root = errors
            .iter()
            .find(|e| !matches!(e, HybridError::Cancelled { .. }))
            .or_else(|| errors.first())
            .cloned()
            .expect("errors is non-empty");
        Err(root)
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn two_sets<'env>(
        log: &'env Mutex<Vec<String>>,
    ) -> (TaskSet<'env, usize>, TaskSet<'env, usize>) {
        let mut a = TaskSet::new("db", vec![0usize; 2]);
        let mut b = TaskSet::new("jen", vec![0usize; 3]);
        a.step(10, move |w, _| {
            log.lock().unwrap().push(format!("db{w}.s10"));
            Ok(())
        });
        b.step(20, move |w, _| {
            log.lock().unwrap().push(format!("jen{w}.s20"));
            Ok(())
        });
        a.step(30, move |w, _| {
            log.lock().unwrap().push(format!("db{w}.s30"));
            Ok(())
        });
        (a, b)
    }

    #[test]
    fn sequential_replays_in_seq_then_worker_order() {
        let log = Mutex::new(Vec::new());
        let (a, b) = two_sets(&log);
        Driver::new(1).run_pair(a, b).unwrap();
        assert_eq!(
            log.into_inner().unwrap(),
            vec!["db0.s10", "db1.s10", "jen0.s20", "jen1.s20", "jen2.s20", "db0.s30", "db1.s30"]
        );
    }

    #[test]
    fn sequential_breaks_seq_ties_db_first() {
        let log: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let logr = &log;
        let mut a = TaskSet::new("db", vec![(); 1]);
        let mut b = TaskSet::new("jen", vec![(); 1]);
        b.step(5, move |_, _| {
            logr.lock().unwrap().push("jen".into());
            Ok(())
        });
        a.step(5, move |_, _| {
            logr.lock().unwrap().push("db".into());
            Ok(())
        });
        Driver::new(1).run_pair(a, b).unwrap();
        assert_eq!(log.into_inner().unwrap(), vec!["db", "jen"]);
    }

    #[test]
    fn parallel_runs_every_step_once_per_worker() {
        let count = AtomicUsize::new(0);
        let countr = &count;
        let mut a = TaskSet::new("db", vec![(); 4]);
        let mut b = TaskSet::new("jen", vec![(); 5]);
        a.step(1, move |_, _| {
            countr.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        b.step(2, move |_, _| {
            countr.fetch_add(10, Ordering::SeqCst);
            Ok(())
        });
        Driver::new(8).run_pair(a, b).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 4 + 50);
    }

    #[test]
    fn states_return_in_worker_order() {
        let mut a = TaskSet::new("db", vec![0usize; 3]);
        let b: TaskSet<()> = TaskSet::new("jen", vec![]);
        a.step(1, |w, st| {
            *st = w * 100;
            Ok(())
        });
        let (states, _) = Driver::new(4).run_pair(a, b).unwrap();
        assert_eq!(states, vec![0, 100, 200]);
    }

    #[test]
    fn error_cancels_peers_and_wins_over_cancelled() {
        let driver = Driver::new(4);
        let cancel = driver.cancel_token();
        let mut a = TaskSet::new("db", vec![(); 1]);
        let mut b = TaskSet::new("jen", vec![(); 2]);
        a.step(1, move |_, _| Err(HybridError::exec("root cause")));
        // peers poll the token as a mailbox would
        let c2 = cancel.clone();
        b.step(1, move |w, _| loop {
            if c2.is_cancelled() {
                return Err(HybridError::Cancelled {
                    worker: format!("jen-{w}"),
                });
            }
            std::thread::yield_now();
        });
        let err = driver.run_pair(a, b).unwrap_err();
        assert_eq!(err, HybridError::exec("root cause"));
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn panic_is_captured_not_propagated() {
        let driver = Driver::new(2);
        let mut a = TaskSet::new("db", vec![(); 1]);
        let b: TaskSet<()> = TaskSet::new("jen", vec![]);
        a.step(1, |_, _| panic!("kaboom"));
        let err = driver.run_pair(a, b).unwrap_err();
        match err {
            HybridError::Exec(m) => {
                assert!(m.contains("db-0") && m.contains("kaboom"), "{m}");
            }
            other => panic!("expected Exec, got {other:?}"),
        }
    }

    #[test]
    fn compute_permits_bound_concurrency() {
        let driver = Driver::new(2);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let (activer, peakr) = (&active, &peak);
        let driverr = &driver;
        let mut a = TaskSet::new("db", vec![(); 6]);
        let b: TaskSet<()> = TaskSet::new("jen", vec![]);
        a.step(1, move |_, _| {
            let _permit = driverr.compute_permit();
            let now = activer.fetch_add(1, Ordering::SeqCst) + 1;
            peakr.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            activer.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        });
        driver.run_pair(a, b).unwrap();
        assert!(peak.load(Ordering::SeqCst) <= 2, "permit cap violated");
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn sequential_permit_is_a_noop() {
        let driver = Driver::new(1);
        let _p1 = driver.compute_permit();
        let _p2 = driver.compute_permit(); // would deadlock if it counted
    }

    use hybrid_net::FaultTarget;

    fn counting_sets<'env>(
        count: &'env AtomicUsize,
    ) -> (TaskSet<'env, usize>, TaskSet<'env, usize>) {
        let mut a = TaskSet::new("db", vec![0usize; 2]);
        let mut b = TaskSet::new("jen", vec![0usize; 3]);
        for seq in [10, 30] {
            a.step(seq, move |_, _| {
                count.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        for seq in [20, 40] {
            b.step(seq, move |_, _| {
                count.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
        }
        (a, b)
    }

    #[test]
    fn sequential_kill_is_typed_and_stops_the_replay() {
        let count = AtomicUsize::new(0);
        let (a, b) = counting_sets(&count);
        let mut driver = Driver::new(1);
        driver.kill = Some(WorkerKill {
            target: FaultTarget::Jen,
            worker: 1,
            step: 1,
        });
        let err = driver.run_pair(a, b).unwrap_err();
        assert_eq!(
            err,
            HybridError::Disconnected {
                endpoint: "jen-worker-1".into(),
                stream: None,
            }
        );
        // db steps 10+30 (2 workers each) + jen step 20 (3 workers) + jen
        // worker 0 of step 40 ran before the kill landed on jen worker 1.
        assert_eq!(count.load(Ordering::SeqCst), 2 + 3 + 2 + 1);
    }

    #[test]
    fn parallel_kill_cancels_peers_and_wins_root_cause() {
        let mut driver = Driver::new(4);
        driver.kill = Some(WorkerKill {
            target: FaultTarget::Db,
            worker: 0,
            step: 0,
        });
        let cancel = driver.cancel_token();
        let mut a = TaskSet::new("db", vec![(); 1]);
        let mut b = TaskSet::new("jen", vec![(); 2]);
        a.step(1, |_, _| Ok(()));
        let c2 = cancel.clone();
        b.step(1, move |w, _| loop {
            if c2.is_cancelled() {
                return Err(HybridError::Cancelled {
                    worker: format!("jen-{w}"),
                });
            }
            std::thread::yield_now();
        });
        let err = driver.run_pair(a, b).unwrap_err();
        assert_eq!(
            err,
            HybridError::Disconnected {
                endpoint: "db-worker-0".into(),
                stream: None,
            }
        );
        assert!(cancel.is_cancelled());
    }

    #[test]
    fn kill_past_the_last_step_never_fires() {
        let count = AtomicUsize::new(0);
        let (a, b) = counting_sets(&count);
        let mut driver = Driver::new(1);
        driver.kill = Some(WorkerKill {
            target: FaultTarget::Db,
            worker: 0,
            step: 99,
        });
        driver.run_pair(a, b).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn straggler_slows_a_worker_without_changing_results() {
        for threads in [1, 4] {
            let count = AtomicUsize::new(0);
            let (a, b) = counting_sets(&count);
            let mut driver = Driver::new(threads);
            driver.straggler = Some(Straggler {
                target: FaultTarget::Jen,
                worker: 2,
                delay: Duration::from_micros(200),
            });
            let start = std::time::Instant::now();
            driver.run_pair(a, b).unwrap();
            assert_eq!(count.load(Ordering::SeqCst), 10, "threads={threads}");
            // 2 jen steps × 200µs lower-bounds the run.
            assert!(start.elapsed() >= Duration::from_micros(400));
        }
    }
}
