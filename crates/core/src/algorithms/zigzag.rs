//! The zigzag join — the paper's contribution (§3.4, Figure 4).
//!
//! Bloom filters flow **both ways**:
//!
//! 1. DB workers filter/project `T'`, build local filters, merge them into
//!    the global `BF_DB` and send it to every JEN worker;
//! 2. JEN workers scan `L` under the local predicates *and* `BF_DB`,
//!    computing a local `BF_H` over the survivors while shuffling them by
//!    the agreed hash (scan ∥ shuffle ∥ BF-build, the Fig. 7 pipeline);
//! 3. local `BF_H`s merge at the designated worker and travel to every DB
//!    worker;
//! 4. DB workers apply `BF_H` to `T'`, shrinking it to `T''` — only tuples
//!    that actually join (modulo false positives) cross the switch;
//! 5. JEN workers build hash tables on the shuffled HDFS data (it arrived
//!    first, §4.4), probe with `T''`, apply the post-join predicate,
//!    aggregate partially, and return the final aggregate to the database.
//!
//! The zigzag join is the only algorithm that exploits the join-key
//! predicates on *both* sides on top of both local predicates.

use crate::algorithms::{
    add_final_aggregation_steps, db_build_and_multicast_bloom, db_route_to_jen, db_scan_step,
    db_tasks, jen_probe_aggregate, jen_recv_build, jen_shuffle_share, jen_take_bloom, jen_tasks,
    t_prime_schema, take_result, Driver, TaskSet,
};
use crate::query::HybridQuery;
use crate::skew::SaltRouter;
use crate::system::{HybridSystem, ZigzagReaccess};
use hybrid_bloom::{filter_batch, BloomFilter};
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_batched;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, StreamTag};

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_jen = sys.config.jen_workers;

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let designated = sys.coordinator.designated_worker()?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: Some(query.hdfs_key_base()),
    };
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;
    // Shared hot-key routing for the L' shuffle and the T'' shipment.
    let salt = &SaltRouter::detect(sys, query)?;

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    // Steps 1–2: T' per DB worker, global BF_DB, multicast to JEN workers.
    db.step(10, move |w, st| {
        st.part = Some(db_scan_step(sys, query, driver, w)?);
        Ok(())
    });
    db.step(12, move |w, st| {
        if w == 0 {
            db_build_and_multicast_bloom(sys, query, st)
        } else {
            Ok(())
        }
    });

    // Step 3: scan with BF_DB, build local BF_H, shuffle L' by the agreed
    // hash. 3a/3b/3c run per worker; in parallel mode shuffling genuinely
    // overlaps the other workers' scans.
    jen.step(20, move |w, st| {
        let bf_db = jen_take_bloom(st, StreamTag::DbBloom)?
            .ok_or_else(|| HybridError::Net("BF_DB never arrived".into()))?;
        let worker = &sys.jen_workers[w];
        let (l_blocks, local_bf) = {
            let _permit = driver.compute_permit();
            let (l_blocks, _) = scan_blocks_batched(
                worker,
                &plan.table,
                &plan.blocks[w],
                scan_spec,
                Some(&bf_db),
            )?;
            // 3b: local BF_H over the filtered share, block by block (a
            // Bloom filter is a bit-set union, so per-block inserts produce
            // the same filter as one pass over the concatenation)
            let local_bf = worker.build_bloom_from_blocks(
                &l_blocks,
                query.hdfs_key,
                BloomFilter::new(query.bloom),
            )?;
            (l_blocks, local_bf)
        };
        if w == designated.index() {
            st.local_bf = Some(local_bf);
        } else {
            let to = Endpoint::Jen(designated);
            st.mailbox
                .send_bloom(to, StreamTag::HdfsBloom, local_bf.to_bytes())?;
            st.mailbox.send_eos(to, StreamTag::HdfsBloom)?;
        }
        // 3c: shuffle by the agreed hash; local partition stays put
        jen_shuffle_share(sys, query, st, w, l_blocks, l_schema, salt.as_ref())
    });

    // Step 4: merge local BF_H's at the designated worker; broadcast the
    // global BF_H to every DB worker.
    jen.step(25, move |w, st| {
        if w != designated.index() {
            return Ok(());
        }
        let mut bf_h = st
            .local_bf
            .take()
            .ok_or_else(|| HybridError::exec("designated worker produced no local BF_H"))?;
        let received = st.mailbox.take_stream(StreamTag::HdfsBloom, num_jen - 1)?;
        for bytes in &received.blooms {
            bf_h.merge(&BloomFilter::from_bytes(bytes)?)?;
        }
        let bytes = bf_h.to_bytes();
        for db_ep in sys.fabric.db_endpoints() {
            st.mailbox
                .send_bloom(db_ep, StreamTag::HdfsBloom, bytes.clone())?;
            st.mailbox.send_eos(db_ep, StreamTag::HdfsBloom)?;
        }
        Ok(())
    });

    // Steps 5–6: DB workers apply BF_H to T' and route the survivors T''
    // with the agreed hash. §3.4 leaves the T' access strategy to the
    // database optimizer: either the materialized step-1 output or an
    // index re-access of the base table — both are implemented, selected
    // by `SystemConfig::zigzag_reaccess`.
    db.step(30, move |w, st| {
        let got = st.mailbox.take_stream(StreamTag::HdfsBloom, 1)?;
        let bf = got
            .blooms
            .first()
            .map(|b| BloomFilter::from_bytes(b))
            .transpose()?
            .ok_or_else(|| HybridError::Net("BF_H never arrived".into()))?;
        let materialized = st.part.take().expect("T' scanned in step 10");
        let t_second = {
            let _permit = driver.compute_permit();
            let part = match sys.config.zigzag_reaccess {
                ZigzagReaccess::Materialize => materialized,
                ZigzagReaccess::IndexReaccess => {
                    // second access of T — index-only when the paper's
                    // covering indexes exist; metered as db.index./db.scan.
                    sys.db.worker(w).scan_filter_project(
                        &query.db_table,
                        &query.db_pred,
                        &query.db_proj,
                    )?
                }
            };
            let apply_span = sys.tracer.start(format!("db-{w}"), Stage::BloomApply);
            let (t_second, _) = filter_batch(&part, query.db_key, &bf)?;
            apply_span.done(0, part.num_rows() as u64);
            t_second
        };
        sys.metrics
            .add("db.bloom.t_rows_after_bfh", t_second.num_rows() as u64);
        db_route_to_jen(sys, query, st, w, &t_second, salt.as_ref())
    });

    // Step 7: build on the shuffled HDFS data, then probe with T'' (layout
    // L' ++ T'), post-join predicate, partial aggregation. Split into two
    // driver steps so a fault plan can kill a worker between a grace
    // join's spill-write (build) and spill-read (probe).
    jen.step(40, move |w, st| {
        jen_recv_build(sys, query, driver, st, w, l_schema)
    });
    jen.step(42, move |w, st| {
        jen_probe_aggregate(sys, query, driver, st, w, t_schema)
    });

    // Steps 8–9: final aggregation at the designated worker, result to DB.
    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 50)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}
