//! The zigzag join — the paper's contribution (§3.4, Figure 4).
//!
//! Bloom filters flow **both ways**:
//!
//! 1. DB workers filter/project `T'`, build local filters, merge them into
//!    the global `BF_DB` and send it to every JEN worker;
//! 2. JEN workers scan `L` under the local predicates *and* `BF_DB`,
//!    computing a local `BF_H` over the survivors while shuffling them by
//!    the agreed hash (scan ∥ shuffle ∥ BF-build, the Fig. 7 pipeline);
//! 3. local `BF_H`s merge at the designated worker and travel to every DB
//!    worker;
//! 4. DB workers apply `BF_H` to `T'`, shrinking it to `T''` — only tuples
//!    that actually join (modulo false positives) cross the switch;
//! 5. JEN workers build hash tables on the shuffled HDFS data (it arrived
//!    first, §4.4), probe with `T''`, apply the post-join predicate,
//!    aggregate partially, and return the final aggregate to the database.
//!
//! The zigzag join is the only algorithm that exploits the join-key
//! predicates on *both* sides on top of both local predicates.

use crate::algorithms::{
    db_apply_local, hdfs_side_final_aggregation, send_data, send_eos, Mailbox,
};
use crate::query::HybridQuery;
use crate::system::{HybridSystem, ZigzagReaccess};
use hybrid_bloom::{filter_batch, ApproxMembership, BloomFilter};
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::ops::{partition_by_key, HashAggregator};
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::LocalJoiner;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, Message, StreamTag};

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    // Steps 1–2: T' per DB worker, global BF_DB, multicast to JEN workers.
    let t_prime = db_apply_local(sys, query)?;
    let bf_span = sys.tracer.start("db", Stage::BloomBuild);
    let bf_db = sys.db.build_global_bloom(
        &query.db_table,
        &query.db_pred,
        query.db_key_base(),
        query.bloom,
    )?;
    bf_span.done(bf_db.wire_bytes() as u64, 0);
    {
        let bytes = bf_db.to_bytes();
        let db0 = Endpoint::Db(DbWorkerId(0));
        for jen in sys.fabric.jen_endpoints() {
            sys.fabric.send(
                db0,
                jen,
                Message::Bloom {
                    stream: StreamTag::DbBloom,
                    bytes: bytes.clone(),
                },
            )?;
            send_eos(sys, db0, jen, StreamTag::DbBloom)?;
        }
    }

    // Step 3: scan with BF_DB, build local BF_H, shuffle L' by the agreed
    // hash. 3a/3b/3c run per worker; shuffling overlaps scanning in the
    // real engine — here the byte counts are what matters.
    let plan = sys.coordinator.plan_scan(&query.hdfs_table)?;
    let designated = sys.coordinator.designated_worker()?;
    let scan_spec = ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: Some(query.hdfs_key_base()),
    };
    let l_schema = plan.table.schema.project(&query.hdfs_proj)?;
    let mut mailboxes: Vec<Mailbox> = sys
        .jen_workers
        .iter()
        .map(|w| Mailbox::new(sys, Endpoint::Jen(w.id())))
        .collect::<Result<_>>()?;
    let mut local_parts: Vec<Batch> = Vec::with_capacity(num_jen);
    let mut designated_local_bf: Option<BloomFilter> = None;
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let me = Endpoint::Jen(worker.id());
        let got = mailboxes[w].take_stream(StreamTag::DbBloom, 1)?;
        let bf = got
            .blooms
            .first()
            .map(|b| BloomFilter::from_bytes(b))
            .transpose()?
            .ok_or_else(|| HybridError::Net("BF_DB never arrived".into()))?;
        let (l_share, _) =
            scan_blocks_pipelined(worker, &plan.table, &plan.blocks[w], &scan_spec, Some(&bf))?;

        // 3b: local BF_H over the filtered share
        let local_bf =
            worker.build_bloom_from(&l_share, query.hdfs_key, BloomFilter::new(query.bloom))?;
        if worker.id() == designated {
            designated_local_bf = Some(local_bf);
        } else {
            sys.fabric.send(
                me,
                Endpoint::Jen(designated),
                Message::Bloom {
                    stream: StreamTag::HdfsBloom,
                    bytes: local_bf.to_bytes(),
                },
            )?;
            send_eos(sys, me, Endpoint::Jen(designated), StreamTag::HdfsBloom)?;
        }

        // 3c: shuffle by the agreed hash; local partition stays put
        let span = sys.tracer.start(worker.span_label(), Stage::ShuffleSend);
        let sent_rows = l_share.num_rows() as u64;
        let sent_bytes = l_share.serialized_bytes() as u64;
        let routed = partition_by_key(&l_share, query.hdfs_key, num_jen, agreed_shuffle_partition)?;
        let mut mine = Batch::empty(l_schema.clone());
        for (dst_idx, piece) in routed.into_iter().enumerate() {
            if dst_idx == w {
                mine = piece;
            } else {
                let dst = Endpoint::Jen(JenWorkerId(dst_idx));
                send_data(sys, me, dst, StreamTag::HdfsShuffle, &piece)?;
                send_eos(sys, me, dst, StreamTag::HdfsShuffle)?;
            }
        }
        span.done(sent_bytes, sent_rows);
        local_parts.push(mine);
    }

    // Step 4: merge local BF_H's at the designated worker; broadcast the
    // global BF_H to every DB worker.
    let mut bf_h = designated_local_bf
        .ok_or_else(|| HybridError::exec("designated worker produced no local BF_H"))?;
    let received = mailboxes[designated.index()].take_stream(StreamTag::HdfsBloom, num_jen - 1)?;
    for bytes in &received.blooms {
        bf_h.merge(&BloomFilter::from_bytes(bytes)?)?;
    }
    {
        let from = Endpoint::Jen(designated);
        let bytes = bf_h.to_bytes();
        for db in sys.fabric.db_endpoints() {
            sys.fabric.send(
                from,
                db,
                Message::Bloom {
                    stream: StreamTag::HdfsBloom,
                    bytes: bytes.clone(),
                },
            )?;
            send_eos(sys, from, db, StreamTag::HdfsBloom)?;
        }
    }

    // Steps 5–6: DB workers apply BF_H to T' and route the survivors T''
    // with the agreed hash. §3.4 leaves the T' access strategy to the
    // database optimizer: either the materialized step-1 output or an
    // index re-access of the base table — both are implemented, selected
    // by `SystemConfig::zigzag_reaccess`.
    for (w, part) in t_prime.iter().enumerate() {
        let me = Endpoint::Db(DbWorkerId(w));
        let mut mb = Mailbox::new(sys, me)?;
        let got = mb.take_stream(StreamTag::HdfsBloom, 1)?;
        let bf = got
            .blooms
            .first()
            .map(|b| BloomFilter::from_bytes(b))
            .transpose()?
            .ok_or_else(|| HybridError::Net("BF_H never arrived".into()))?;
        let reaccessed;
        let part = match sys.config.zigzag_reaccess {
            ZigzagReaccess::Materialize => part,
            ZigzagReaccess::IndexReaccess => {
                // second access of T — index-only when the paper's covering
                // indexes exist; metered as db.index.* / db.scan.*
                reaccessed = sys.db.worker(w).scan_filter_project(
                    &query.db_table,
                    &query.db_pred,
                    &query.db_proj,
                )?;
                &reaccessed
            }
        };
        let apply_span = sys.tracer.start(format!("db-{w}"), Stage::BloomApply);
        let (t_second, _) = filter_batch(part, query.db_key, &bf)?;
        apply_span.done(0, part.num_rows() as u64);
        sys.metrics
            .add("db.bloom.t_rows_after_bfh", t_second.num_rows() as u64);
        let send_span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        let routed = partition_by_key(&t_second, query.db_key, num_jen, agreed_shuffle_partition)?;
        for (jen_idx, piece) in routed.into_iter().enumerate() {
            let dst = Endpoint::Jen(JenWorkerId(jen_idx));
            send_data(sys, me, dst, StreamTag::DbData, &piece)?;
            send_eos(sys, me, dst, StreamTag::DbData)?;
        }
        send_span.done(
            t_second.serialized_bytes() as u64,
            t_second.num_rows() as u64,
        );
    }

    // Step 7: build on the shuffled HDFS data, probe with T'' (layout
    // L' ++ T'), post-join predicate, partial aggregation.
    let post_pred = query.post_predicate_hdfs_layout();
    let group_expr = query.group_expr_hdfs_layout();
    let hdfs_aggs = query.aggs_hdfs_layout();
    let mut partials: Vec<Batch> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let shuffled = mailboxes[w].take_stream(StreamTag::HdfsShuffle, num_jen - 1)?;
        let recv_rows: u64 = shuffled.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);
        // the local join: in-memory by default, grace-hash with spilling
        // when the engine is configured with a build-side memory budget
        let mut joiner = LocalJoiner::new(
            l_schema.clone(),
            query.hdfs_key,
            sys.config.jen_memory_limit_rows,
            sys.metrics.clone(),
        )?;
        let built_rows = local_parts[w].num_rows() as u64 + recv_rows;
        let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
        joiner.build(std::mem::replace(
            &mut local_parts[w],
            Batch::empty(l_schema.clone()),
        ))?;
        for b in shuffled.batches {
            joiner.build(b)?;
        }
        build_span.done(0, built_rows);
        let db_data = mailboxes[w].take_stream(StreamTag::DbData, num_db)?;
        let t_schema = t_prime[0].schema().clone();
        let probe_rows: u64 = db_data.batches.iter().map(|b| b.num_rows() as u64).sum();
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe_all(&t_schema, db_data.batches, query.db_key)?;
        probe_span.done(0, probe_rows);
        let joined = match &post_pred {
            Some(p) => {
                let mask = p.eval_predicate(&joined)?;
                joined.filter(&mask)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let mut agg = HashAggregator::new(hdfs_aggs.clone());
        let groups = group_expr.eval_i64(&joined)?;
        agg.update(&groups, &joined)?;
        partials.push(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
    }

    // Steps 8–9: final aggregation at the designated worker, result to DB.
    hdfs_side_final_aggregation(sys, query, partials)
}
