//! DB-side join (±Bloom filter) — paper §3.1, Figures 1 and 5.
//!
//! The strategy used by PolyBase / HAWQ / SQL-H / Big Data SQL: the HDFS
//! side applies local predicates, projection (and optionally the database's
//! Bloom filter), and ships the surviving rows **into the database**, where
//! the optimizer picks broadcast or repartition for the final join. JEN
//! workers are divided into one group per DB worker (Fig. 5) so ingestion
//! is parallel on both ends.

use crate::algorithms::{
    db_build_and_multicast_bloom, db_scan_step, db_tasks, jen_take_bloom, jen_tasks, Driver,
    TaskSet,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::trace::Stage;
use hybrid_edw::DbJoinSpec;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, StreamTag};

pub(crate) fn execute(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    // The coordinator groups workers: group[i] feeds DB worker i (Fig. 5).
    // Dead workers appear in no group and take no steps.
    let groups = sys.coordinator.group_workers_for_db(num_db);
    let mut db_of_jen: Vec<Option<usize>> = vec![None; num_jen];
    for (db_idx, group) in groups.iter().enumerate() {
        for wid in group {
            db_of_jen[wid.index()] = Some(db_idx);
        }
    }
    let expected: Vec<usize> = groups.iter().map(|g| g.len()).collect();

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: use_bloom.then(|| query.hdfs_key_base()),
    };
    let hdfs_out_schema = &plan.table.schema.project(&query.hdfs_proj)?;

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    // Step 1: local predicates + projection on every DB worker.
    db.step(10, move |w, st| {
        st.part = Some(db_scan_step(sys, query, driver, w)?);
        Ok(())
    });

    // Step 2: global BF_DB, multicast to the JEN workers.
    if use_bloom {
        db.step(15, move |w, st| {
            if w == 0 {
                db_build_and_multicast_bloom(sys, query, st)
            } else {
                Ok(())
            }
        });
    }

    // Step 3: JEN scans, filters, and sends to its group's DB worker.
    jen.step(20, move |w, st| {
        let Some(db_idx) = db_of_jen[w] else {
            // not in any group (dead or unassigned) — takes no part
            return Ok(());
        };
        let bloom = if use_bloom {
            jen_take_bloom(st, StreamTag::DbBloom)?
        } else {
            None
        };
        let worker = &sys.jen_workers[w];
        let batch = {
            let _permit = driver.compute_permit();
            scan_blocks_pipelined(
                worker,
                &plan.table,
                &plan.blocks[w],
                scan_spec,
                bloom.as_ref(),
            )?
            .0
        };
        let dst = Endpoint::Db(DbWorkerId(db_idx));
        let span = sys.tracer.start(worker.span_label(), Stage::ShuffleSend);
        st.mailbox.send_data(dst, StreamTag::HdfsData, &batch)?;
        st.mailbox.send_eos(dst, StreamTag::HdfsData)?;
        span.done(batch.serialized_bytes() as u64, batch.num_rows() as u64);
        Ok(())
    });

    // Step 4: DB workers land their group's HDFS data.
    db.step(30, move |w, st| {
        let n = expected.get(w).copied().unwrap_or(0);
        st.landed = Some(if n == 0 {
            Batch::empty(hdfs_out_schema.clone())
        } else {
            let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleRecv);
            let got = st.mailbox.take_stream(StreamTag::HdfsData, n)?;
            let landed = Batch::concat(hdfs_out_schema.clone(), &got.batches)?;
            span.done(landed.serialized_bytes() as u64, landed.num_rows() as u64);
            landed
        });
        Ok(())
    });

    let (mut db_states, _jen_states) = driver.run_pair(db, jen)?;

    // Step 5: the database's own optimizer finishes the join + aggregation.
    // Canonical layout T' ++ L'' matches DbJoinSpec's left ++ right.
    let mut parts: Vec<Batch> = Vec::with_capacity(num_db);
    let mut landed: Vec<Batch> = Vec::with_capacity(num_db);
    for st in &mut db_states {
        parts.push(st.part.take().expect("T' scanned in step 10"));
        landed.push(st.landed.take().expect("HDFS data landed in step 30"));
    }
    let spec = DbJoinSpec {
        left_key: query.db_key,
        right_key: query.hdfs_key,
        post_predicate: query.post_predicate.clone(),
        group_expr: query.group_expr.clone(),
        aggs: query.aggs.clone(),
    };
    let join_span = sys.tracer.start("db", Stage::Probe);
    let (result, choice) = sys.db.join_and_aggregate(&parts, &landed, &spec)?;
    join_span.done(0, result.num_rows() as u64);
    sys.metrics
        .incr(&format!("db.join.plan.{choice:?}").to_lowercase());
    Ok(result)
}
