//! DB-side join (±Bloom filter) — paper §3.1, Figures 1 and 5.
//!
//! The strategy used by PolyBase / HAWQ / SQL-H / Big Data SQL: the HDFS
//! side applies local predicates, projection (and optionally the database's
//! Bloom filter), and ships the surviving rows **into the database**, where
//! the optimizer picks broadcast or repartition for the final join. JEN
//! workers are divided into one group per DB worker (Fig. 5) so ingestion
//! is parallel on both ends.

use crate::algorithms::{db_apply_local, send_data, send_eos, Mailbox};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_bloom::BloomFilter;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::trace::Stage;
use hybrid_edw::DbJoinSpec;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, Message, StreamTag};

pub(crate) fn execute(
    sys: &mut HybridSystem,
    query: &HybridQuery,
    use_bloom: bool,
) -> Result<Batch> {
    let num_db = sys.config.db_workers;

    // Step 1: local predicates + projection on every DB worker.
    let t_prime = db_apply_local(sys, query)?;

    // Step 2: compute the global BF_DB and multicast it to the JEN workers.
    if use_bloom {
        let bf_span = sys.tracer.start("db", Stage::BloomBuild);
        let bf = sys.db.build_global_bloom(
            &query.db_table,
            &query.db_pred,
            query.db_key_base(),
            query.bloom,
        )?;
        let bytes = bf.to_bytes();
        bf_span.done(bytes.len() as u64, 0);
        let db0 = Endpoint::Db(DbWorkerId(0));
        for jen in sys.fabric.jen_endpoints() {
            sys.fabric.send(
                db0,
                jen,
                Message::Bloom {
                    stream: StreamTag::DbBloom,
                    bytes: bytes.clone(),
                },
            )?;
            send_eos(sys, db0, jen, StreamTag::DbBloom)?;
        }
    }

    // Step 3: JEN scans, filters, and sends to its DB worker. The
    // coordinator groups workers: group[i] feeds DB worker i (Fig. 5).
    let plan = sys.coordinator.plan_scan(&query.hdfs_table)?;
    let groups = sys.coordinator.group_workers_for_db(num_db);
    let scan_spec = ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: use_bloom.then(|| query.hdfs_key_base()),
    };
    for (db_idx, group) in groups.iter().enumerate() {
        for wid in group {
            let worker = &sys.jen_workers[wid.index()];
            let bloom = if use_bloom {
                let mut mb = Mailbox::new(sys, Endpoint::Jen(worker.id()))?;
                let got = mb.take_stream(StreamTag::DbBloom, 1)?;
                got.blooms
                    .first()
                    .map(|b| BloomFilter::from_bytes(b))
                    .transpose()?
            } else {
                None
            };
            let (batch, _) = scan_blocks_pipelined(
                worker,
                &plan.table,
                &plan.blocks[wid.index()],
                &scan_spec,
                bloom.as_ref(),
            )?;
            let dst = Endpoint::Db(DbWorkerId(db_idx));
            let src = Endpoint::Jen(worker.id());
            let span = sys.tracer.start(worker.span_label(), Stage::ShuffleSend);
            send_data(sys, src, dst, StreamTag::HdfsData, &batch)?;
            send_eos(sys, src, dst, StreamTag::HdfsData)?;
            span.done(batch.serialized_bytes() as u64, batch.num_rows() as u64);
        }
    }

    // Step 4: DB workers land their group's HDFS data.
    let hdfs_out_schema = plan.table.schema.project(&query.hdfs_proj)?;
    let mut landed: Vec<Batch> = Vec::with_capacity(num_db);
    for (db_idx, group) in groups.iter().enumerate().take(num_db) {
        let expected = group.len();
        let batch = if expected == 0 {
            Batch::empty(hdfs_out_schema.clone())
        } else {
            let span = sys.tracer.start(format!("db-{db_idx}"), Stage::ShuffleRecv);
            let mut mb = Mailbox::new(sys, Endpoint::Db(DbWorkerId(db_idx)))?;
            let got = mb.take_stream(StreamTag::HdfsData, expected)?;
            let landed_batch = Batch::concat(hdfs_out_schema.clone(), &got.batches)?;
            span.done(
                landed_batch.serialized_bytes() as u64,
                landed_batch.num_rows() as u64,
            );
            landed_batch
        };
        landed.push(batch);
    }

    // Step 5: the database's own optimizer finishes the join + aggregation.
    // Canonical layout T' ++ L'' matches DbJoinSpec's left ++ right.
    let spec = DbJoinSpec {
        left_key: query.db_key,
        right_key: query.hdfs_key,
        post_predicate: query.post_predicate.clone(),
        group_expr: query.group_expr.clone(),
        aggs: query.aggs.clone(),
    };
    let join_span = sys.tracer.start("db", Stage::Probe);
    let (result, choice) = sys.db.join_and_aggregate(&t_prime, &landed, &spec)?;
    join_span.done(0, result.num_rows() as u64);
    sys.metrics
        .incr(&format!("db.join.plan.{choice:?}").to_lowercase());
    Ok(result)
}
