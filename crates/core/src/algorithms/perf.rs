//! PERF join baseline — Li & Ross (CIKM '95), discussed in the paper's §6.
//!
//! PERF replaces the second semi-join value transfer with a **bitmap of
//! positions**: the first table ships its join keys *in tuple-scan order*
//! (duplicates included), the other side replies with one bit per received
//! key ("this position has a partner"), and the sender then selects exactly
//! the matching tuples by position — no values travel back, and no false
//! positives occur.
//!
//! The paper's criticism — "unlike Bloom join, it doesn't work well in
//! parallel settings, when there are lots of duplicated values" — falls out
//! of the construction: the forward transfer is one key **per tuple** of
//! `T'` (a Bloom filter's size is independent of duplication), and in a
//! partitioned cluster every key must be routed to the worker that owns its
//! hash partition before it can be tested. The ablation tests quantify
//! both effects against the zigzag join.
//!
//! Flow implemented here (the zigzag-compatible parallel adaptation):
//!
//! 1. JEN scans `L` under local predicates and shuffles `L'` by the agreed
//!    hash (as in the repartition join), so each worker owns a key range;
//! 2. DB workers route their `T'` join keys — in order, duplicates kept —
//!    to the owning JEN workers (`PerfKeys`);
//! 3. each JEN worker replies to each DB worker with a positional bitmap
//!    over the keys that worker sent it (`PerfBitmap`);
//! 4. DB workers reassemble the bitmaps (keyed by which JEN worker sent
//!    them — arrival order is arbitrary under parallel execution), select
//!    the matching `T'` tuples, and ship only those (`DbData`), exactly
//!    like the zigzag join's `T''`;
//! 5. local joins + aggregation as in the repartition join.

use crate::algorithms::{
    add_final_aggregation_steps, db_route_to_jen, db_scan_step, db_tasks, jen_probe_aggregate,
    jen_shuffle_share, jen_tasks, t_prime_schema, take_result, Driver, TaskSet,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::schema::Schema;
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::LocalJoiner;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, StreamTag};
use std::collections::HashSet;

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: None,
    };
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;
    let key_schema = &Schema::from_pairs(&[("joinKey", DataType::I64)]);

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    // Step 0: T' per DB worker.
    db.step(10, move |w, st| {
        st.part = Some(db_scan_step(sys, query, driver, w)?);
        Ok(())
    });

    // Step 1: JEN scans and shuffles L' (repartition-style); each worker
    // then owns the keys of its hash partition.
    //
    // PERF deliberately stays on the tuple-at-a-time path: its protocol is
    // *positional* — steps 2–4 ship key lists and bitmaps whose meaning is
    // each tuple's ordinal within a worker's concatenated partition — so
    // the share is materialized as one batch here and the per-row loops
    // below are kept as the faithful baseline the vectorized algorithms
    // are measured against.
    jen.step(20, move |w, st| {
        let l_share = {
            let _permit = driver.compute_permit();
            scan_blocks_pipelined(
                &sys.jen_workers[w],
                &plan.table,
                &plan.blocks[w],
                scan_spec,
                None,
            )?
            .0
        };
        // PERF is never salted: the positional-bitmap protocol requires
        // each JEN worker to own *all* L' keys of its hash partition, which
        // splitting a hot key across salt workers would break.
        jen_shuffle_share(sys, query, st, w, vec![l_share], l_schema, None)
    });

    // Step 2: DB workers ship their T' key columns in tuple order,
    // duplicates included — PERF's forward transfer grows with |T'|, not
    // with the number of distinct keys.
    db.step(30, move |w, st| {
        let part = st.part.take().expect("T' scanned in step 10");
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        let keys = part.column(query.db_key)?;
        let mut per_dest: Vec<Vec<i64>> = vec![Vec::new(); num_jen];
        for row in 0..part.num_rows() {
            let k = keys.key_at(row)?;
            per_dest[agreed_shuffle_partition(k, num_jen)].push(k);
        }
        let rows = part.num_rows() as u64;
        for (dst_idx, dest_keys) in per_dest.into_iter().enumerate() {
            let dst = Endpoint::Jen(JenWorkerId(dst_idx));
            let batch = Batch::new(key_schema.clone(), vec![Column::I64(dest_keys)])?;
            st.mailbox.send_data(dst, StreamTag::PerfKeys, &batch)?;
            st.mailbox.send_eos(dst, StreamTag::PerfKeys)?;
        }
        span.done(0, rows);
        st.part = Some(part);
        Ok(())
    });

    // Step 3: each JEN worker assembles its owned key set (local partition
    // + received shuffle) into the local joiner, and answers every DB
    // worker's key stream with a positional bitmap.
    jen.step(40, move |w, st| {
        let worker = &sys.jen_workers[w];
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let shuffled = st
            .mailbox
            .take_stream(StreamTag::HdfsShuffle, num_jen - 1)?;
        let recv_rows: u64 = shuffled.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);
        let local = st
            .local_part
            .take()
            .unwrap_or_else(|| Batch::empty(l_schema.clone()));
        let built_rows = local.num_rows() as u64 + recv_rows;
        sys.metrics
            .add(&format!("net.shuffle.rows.jen-{w}"), built_rows);
        let mut owned_keys: HashSet<i64> = HashSet::new();
        {
            let _permit = driver.compute_permit();
            let build_span = sys.tracer.start(label, Stage::HashBuild);
            let mut joiner = LocalJoiner::new(
                l_schema.clone(),
                query.hdfs_key,
                sys.config.jen_memory_limit_rows,
                sys.query_budget
                    .as_ref()
                    .map(|q| q.worker_share(sys.config.jen_workers)),
                sys.metrics.clone(),
            )?;
            collect_keys(&local, query.hdfs_key, &mut owned_keys)?;
            joiner.build(local)?;
            for b in shuffled.batches {
                collect_keys(&b, query.hdfs_key, &mut owned_keys)?;
                joiner.build(b)?;
            }
            build_span.done(0, built_rows);
            st.joiner = Some(joiner);
        }

        // Bitmap replies: deliveries from one sender arrive in send order,
        // so concatenating a sender's batches reproduces its routing order
        // and the bitmap positions align.
        let key_data = st.mailbox.take_stream(StreamTag::PerfKeys, num_db)?;
        let mut per_sender: Vec<Vec<bool>> = vec![Vec::new(); num_db];
        for (batch, from) in key_data.batches.iter().zip(&key_data.batch_senders) {
            let d = match from {
                Endpoint::Db(id) => id.index(),
                other => {
                    return Err(HybridError::exec(format!(
                        "PERF keys from non-DB endpoint {other}"
                    )))
                }
            };
            let keys = batch.column(0)?;
            for row in 0..batch.num_rows() {
                per_sender[d].push(owned_keys.contains(&keys.key_at(row)?));
            }
        }
        for (d, bits) in per_sender.into_iter().enumerate() {
            let dst = Endpoint::Db(DbWorkerId(d));
            st.mailbox
                .send_bloom(dst, StreamTag::PerfBitmap, pack_bits(&bits))?;
            st.mailbox.send_eos(dst, StreamTag::PerfBitmap)?;
        }
        Ok(())
    });

    // Step 4: DB workers reassemble bitmaps into per-position matches and
    // ship exactly the matching tuples.
    db.step(50, move |w, st| {
        let replies = st.mailbox.take_stream(StreamTag::PerfBitmap, num_jen)?;
        // bitmaps arrive in arbitrary order under parallel execution:
        // index them by the JEN worker that owns each hash partition
        let mut by_owner: Vec<Option<&Vec<u8>>> = vec![None; num_jen];
        for (bytes, from) in replies.blooms.iter().zip(&replies.bloom_senders) {
            match from {
                Endpoint::Jen(id) => by_owner[id.index()] = Some(bytes),
                other => {
                    return Err(HybridError::exec(format!(
                        "PERF bitmap from non-JEN endpoint {other}"
                    )))
                }
            }
        }
        let mut bitmaps: Vec<BitReader> = Vec::with_capacity(num_jen);
        for (owner, bytes) in by_owner.into_iter().enumerate() {
            bitmaps.push(BitReader::new(bytes.ok_or_else(|| {
                HybridError::exec(format!(
                    "PERF join missing the bitmap of jen-worker-{owner}"
                ))
            })?));
        }
        let part = st.part.take().expect("T' kept from step 30");
        let keys = part.column(query.db_key)?;
        let mut mask = Vec::with_capacity(part.num_rows());
        for row in 0..part.num_rows() {
            let owner = agreed_shuffle_partition(keys.key_at(row)?, num_jen);
            mask.push(bitmaps[owner].next()?);
        }
        let t_second = part.filter(&mask)?;
        sys.metrics
            .add("db.perf.t_rows_after_bitmap", t_second.num_rows() as u64);
        db_route_to_jen(sys, query, st, w, &t_second, None)
    });

    // Step 5: probe + aggregate (identical to the repartition epilogue).
    jen.step(60, move |w, st| {
        jen_probe_aggregate(sys, query, driver, st, w, t_schema)
    });

    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 70)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}

fn collect_keys(batch: &Batch, key_col: usize, out: &mut HashSet<i64>) -> Result<()> {
    let keys = batch.column(key_col)?;
    for row in 0..batch.num_rows() {
        out.insert(keys.key_at(row)?);
    }
    Ok(())
}

/// Pack booleans LSB-first into bytes — the PERF bitmap wire format.
fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Sequential reader over a packed bitmap.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    fn next(&mut self) -> Result<bool> {
        let byte = self
            .bytes
            .get(self.pos / 8)
            .ok_or_else(|| HybridError::exec("PERF bitmap shorter than the key stream"))?;
        let bit = (byte >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_packing_roundtrip() {
        let bits = vec![
            true, false, true, true, false, false, false, true, true, false,
        ];
        let bytes = pack_bits(&bits);
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.next().unwrap(), b);
        }
    }

    #[test]
    fn bit_reader_overrun_errors() {
        let bytes = pack_bits(&[true]);
        let mut r = BitReader::new(&bytes);
        for _ in 0..8 {
            r.next().unwrap();
        }
        assert!(r.next().is_err());
    }

    #[test]
    fn empty_bitmap() {
        assert!(pack_bits(&[]).is_empty());
        let mut r = BitReader::new(&[]);
        assert!(r.next().is_err());
    }
}
