//! PERF join baseline — Li & Ross (CIKM '95), discussed in the paper's §6.
//!
//! PERF replaces the second semi-join value transfer with a **bitmap of
//! positions**: the first table ships its join keys *in tuple-scan order*
//! (duplicates included), the other side replies with one bit per received
//! key ("this position has a partner"), and the sender then selects exactly
//! the matching tuples by position — no values travel back, and no false
//! positives occur.
//!
//! The paper's criticism — "unlike Bloom join, it doesn't work well in
//! parallel settings, when there are lots of duplicated values" — falls out
//! of the construction: the forward transfer is one key **per tuple** of
//! `T'` (a Bloom filter's size is independent of duplication), and in a
//! partitioned cluster every key must be routed to the worker that owns its
//! hash partition before it can be tested. The ablation tests quantify
//! both effects against the zigzag join.
//!
//! Flow implemented here (the zigzag-compatible parallel adaptation):
//!
//! 1. JEN scans `L` under local predicates and shuffles `L'` by the agreed
//!    hash (as in the repartition join), so each worker owns a key range;
//! 2. DB workers route their `T'` join keys — in order, duplicates kept —
//!    to the owning JEN workers (`PerfKeys`);
//! 3. each JEN worker replies to each DB worker with a positional bitmap
//!    over the keys that worker sent it (`PerfBitmap`);
//! 4. DB workers reassemble the bitmaps (the routing is deterministic, so
//!    positions align), select the matching `T'` tuples, and ship only
//!    those (`DbData`), exactly like the zigzag join's `T''`;
//! 5. local joins + aggregation as in the repartition join.

use crate::algorithms::{
    db_apply_local, hdfs_side_final_aggregation, send_data, send_eos, Mailbox,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::ops::{partition_by_key, HashAggregator};
use hybrid_common::schema::Schema;
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::LocalJoiner;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, Message, StreamTag};
use std::collections::HashSet;

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    // Step 0: T' per DB worker.
    let t_prime = db_apply_local(sys, query)?;

    // Step 1: JEN scans and shuffles L' (repartition-style); each worker
    // then owns the keys of its hash partition.
    let plan = sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: None,
    };
    let l_schema = plan.table.schema.project(&query.hdfs_proj)?;
    let mut mailboxes: Vec<Mailbox> = sys
        .jen_workers
        .iter()
        .map(|w| Mailbox::new(sys, Endpoint::Jen(w.id())))
        .collect::<Result<_>>()?;
    let mut local_parts: Vec<Batch> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let me = Endpoint::Jen(worker.id());
        let (l_share, _) =
            scan_blocks_pipelined(worker, &plan.table, &plan.blocks[w], &scan_spec, None)?;
        let span = sys.tracer.start(worker.span_label(), Stage::ShuffleSend);
        let sent_rows = l_share.num_rows() as u64;
        let sent_bytes = l_share.serialized_bytes() as u64;
        let routed = partition_by_key(&l_share, query.hdfs_key, num_jen, agreed_shuffle_partition)?;
        let mut mine = Batch::empty(l_schema.clone());
        for (dst_idx, piece) in routed.into_iter().enumerate() {
            if dst_idx == w {
                mine = piece;
            } else {
                let dst = Endpoint::Jen(JenWorkerId(dst_idx));
                send_data(sys, me, dst, StreamTag::HdfsShuffle, &piece)?;
                send_eos(sys, me, dst, StreamTag::HdfsShuffle)?;
            }
        }
        span.done(sent_bytes, sent_rows);
        local_parts.push(mine);
    }

    // Step 2: DB workers ship their T' key columns in tuple order,
    // duplicates included — PERF's forward transfer grows with |T'|, not
    // with the number of distinct keys.
    let key_schema = Schema::from_pairs(&[("joinKey", DataType::I64)]);
    for (w, part) in t_prime.iter().enumerate() {
        let me = Endpoint::Db(DbWorkerId(w));
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        let keys = part.column(query.db_key)?;
        let mut per_dest: Vec<Vec<i64>> = vec![Vec::new(); num_jen];
        for row in 0..part.num_rows() {
            let k = keys.key_at(row)?;
            per_dest[agreed_shuffle_partition(k, num_jen)].push(k);
        }
        for (dst_idx, dest_keys) in per_dest.into_iter().enumerate() {
            let dst = Endpoint::Jen(JenWorkerId(dst_idx));
            let batch = Batch::new(key_schema.clone(), vec![Column::I64(dest_keys)])?;
            send_data(sys, me, dst, StreamTag::PerfKeys, &batch)?;
            send_eos(sys, me, dst, StreamTag::PerfKeys)?;
        }
        span.done(0, part.num_rows() as u64);
    }

    // Step 3: each JEN worker assembles its owned key set (local partition
    // + received shuffle) into the local joiner, and answers every DB
    // worker's key stream with a positional bitmap.
    let mut joiners: Vec<Option<LocalJoiner>> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let me = Endpoint::Jen(worker.id());
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let shuffled = mailboxes[w].take_stream(StreamTag::HdfsShuffle, num_jen - 1)?;
        let recv_rows: u64 = shuffled.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);
        let mut owned_keys: HashSet<i64> = HashSet::new();
        collect_keys(&local_parts[w], query.hdfs_key, &mut owned_keys)?;
        let mut joiner = LocalJoiner::new(
            l_schema.clone(),
            query.hdfs_key,
            sys.config.jen_memory_limit_rows,
            sys.metrics.clone(),
        )?;
        let built_rows = local_parts[w].num_rows() as u64 + recv_rows;
        let build_span = sys.tracer.start(label, Stage::HashBuild);
        joiner.build(std::mem::replace(
            &mut local_parts[w],
            Batch::empty(l_schema.clone()),
        ))?;
        for b in shuffled.batches {
            collect_keys(&b, query.hdfs_key, &mut owned_keys)?;
            joiner.build(b)?;
        }
        build_span.done(0, built_rows);
        joiners.push(Some(joiner));

        // Bitmap replies: deliveries from one sender arrive in send order,
        // so concatenating a sender's batches reproduces its routing order
        // and the bitmap positions align.
        let key_data = mailboxes[w].take_stream(StreamTag::PerfKeys, num_db)?;
        let mut per_sender: Vec<Vec<bool>> = vec![Vec::new(); num_db];
        for (batch, from) in key_data.batches.iter().zip(&key_data.batch_senders) {
            let d = match from {
                Endpoint::Db(id) => id.index(),
                other => {
                    return Err(HybridError::exec(format!(
                        "PERF keys from non-DB endpoint {other}"
                    )))
                }
            };
            let keys = batch.column(0)?;
            for row in 0..batch.num_rows() {
                per_sender[d].push(owned_keys.contains(&keys.key_at(row)?));
            }
        }
        for (d, bits) in per_sender.into_iter().enumerate() {
            let bytes = pack_bits(&bits);
            let dst = Endpoint::Db(DbWorkerId(d));
            sys.fabric.send(
                me,
                dst,
                Message::Bloom {
                    stream: StreamTag::PerfBitmap,
                    bytes,
                },
            )?;
            send_eos(sys, me, dst, StreamTag::PerfBitmap)?;
        }
    }

    // Step 4: DB workers reassemble bitmaps into per-position matches and
    // ship exactly the matching tuples.
    for (w, part) in t_prime.iter().enumerate() {
        let me = Endpoint::Db(DbWorkerId(w));
        let mut mb = Mailbox::new(sys, me)?;
        let replies = mb.take_stream(StreamTag::PerfBitmap, num_jen)?;
        // replies arrive in JEN-worker order (workers are driven in order);
        // reassemble: walk T' rows, taking the next bit from the bitmap of
        // the owning worker.
        let mut bitmaps: Vec<BitReader> =
            replies.blooms.iter().map(|b| BitReader::new(b)).collect();
        if bitmaps.len() != num_jen {
            return Err(HybridError::exec(format!(
                "PERF join expected {num_jen} bitmaps, got {}",
                bitmaps.len()
            )));
        }
        let keys = part.column(query.db_key)?;
        let mut mask = Vec::with_capacity(part.num_rows());
        for row in 0..part.num_rows() {
            let owner = agreed_shuffle_partition(keys.key_at(row)?, num_jen);
            mask.push(bitmaps[owner].next()?);
        }
        let t_second = part.filter(&mask)?;
        sys.metrics
            .add("db.perf.t_rows_after_bitmap", t_second.num_rows() as u64);
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        let routed = partition_by_key(&t_second, query.db_key, num_jen, agreed_shuffle_partition)?;
        for (jen_idx, piece) in routed.into_iter().enumerate() {
            let dst = Endpoint::Jen(JenWorkerId(jen_idx));
            send_data(sys, me, dst, StreamTag::DbData, &piece)?;
            send_eos(sys, me, dst, StreamTag::DbData)?;
        }
        span.done(
            t_second.serialized_bytes() as u64,
            t_second.num_rows() as u64,
        );
    }

    // Step 5: probe + aggregate (identical to the repartition epilogue).
    let post_pred = query.post_predicate_hdfs_layout();
    let group_expr = query.group_expr_hdfs_layout();
    let hdfs_aggs = query.aggs_hdfs_layout();
    let mut partials: Vec<Batch> = Vec::with_capacity(num_jen);
    let t_schema = t_prime[0].schema().clone();
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let label = worker.span_label();
        let db_data = mailboxes[w].take_stream(StreamTag::DbData, num_db)?;
        let joiner = joiners[w].take().expect("joiner built in step 3");
        let probe_rows: u64 = db_data.batches.iter().map(|b| b.num_rows() as u64).sum();
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe_all(&t_schema, db_data.batches, query.db_key)?;
        probe_span.done(0, probe_rows);
        let joined = match &post_pred {
            Some(p) => {
                let m = p.eval_predicate(&joined)?;
                joined.filter(&m)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let mut agg = HashAggregator::new(hdfs_aggs.clone());
        let groups = group_expr.eval_i64(&joined)?;
        agg.update(&groups, &joined)?;
        partials.push(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
    }

    hdfs_side_final_aggregation(sys, query, partials)
}

fn collect_keys(batch: &Batch, key_col: usize, out: &mut HashSet<i64>) -> Result<()> {
    let keys = batch.column(key_col)?;
    for row in 0..batch.num_rows() {
        out.insert(keys.key_at(row)?);
    }
    Ok(())
}

/// Pack booleans LSB-first into bytes — the PERF bitmap wire format.
fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Sequential reader over a packed bitmap.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    fn next(&mut self) -> Result<bool> {
        let byte = self
            .bytes
            .get(self.pos / 8)
            .ok_or_else(|| HybridError::exec("PERF bitmap shorter than the key stream"))?;
        let bit = (byte >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_packing_roundtrip() {
        let bits = vec![
            true, false, true, true, false, false, false, true, true, false,
        ];
        let bytes = pack_bits(&bits);
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.next().unwrap(), b);
        }
    }

    #[test]
    fn bit_reader_overrun_errors() {
        let bytes = pack_bits(&[true]);
        let mut r = BitReader::new(&bytes);
        for _ in 0..8 {
            r.next().unwrap();
        }
        assert!(r.next().is_err());
    }

    #[test]
    fn empty_bitmap() {
        assert!(pack_bits(&[]).is_empty());
        let mut r = BitReader::new(&[]);
        assert!(r.next().is_err());
    }
}
