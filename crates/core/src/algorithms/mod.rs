//! The join algorithms and their shared plumbing.
//!
//! Every algorithm is a pure orchestration over the substrates: database
//! scans and Bloom UDFs from `hybrid-edw`, block scans from `hybrid-jen`,
//! and metered transfers over the `hybrid-net` fabric. The orchestration
//! here executes the steps of Figures 1–4 in their stated order; the data
//! volumes that the paper's evaluation hinges on are measured, not modeled.

pub mod broadcast;
pub mod db_side;
pub mod perf;
pub mod repartition;
pub mod semijoin;
pub mod zigzag;

use crate::query::HybridQuery;
use crate::stats::{JoinSummary, RunOutput};
use crate::system::HybridSystem;
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::ids::DbWorkerId;
use hybrid_common::ops::HashAggregator;
use hybrid_common::trace::Stage;
use hybrid_net::{Delivery, Endpoint, Message, StreamTag};
use std::collections::HashMap;

/// Which join strategy to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Fetch filtered HDFS data into the database; join there (§3.1).
    DbSide { bloom: bool },
    /// Broadcast the filtered database table to every JEN worker (§3.2).
    Broadcast,
    /// Shuffle both filtered tables to JEN workers by the agreed hash (§3.3).
    Repartition { bloom: bool },
    /// 2-way Bloom filters; join on the HDFS side (§3.4).
    Zigzag,
    /// Repartition with an exact key set instead of `BF_DB` (the classic
    /// semi-join baseline the paper contrasts Bloom joins against, §6).
    SemiJoin,
    /// PERF join (Li & Ross, §6): positional bitmaps instead of a reverse
    /// Bloom filter — exact, but its forward transfer duplicates keys per
    /// tuple.
    PerfJoin,
}

impl JoinAlgorithm {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgorithm::DbSide { bloom: false } => "db",
            JoinAlgorithm::DbSide { bloom: true } => "db(BF)",
            JoinAlgorithm::Broadcast => "broadcast",
            JoinAlgorithm::Repartition { bloom: false } => "repartition",
            JoinAlgorithm::Repartition { bloom: true } => "repartition(BF)",
            JoinAlgorithm::Zigzag => "zigzag",
            JoinAlgorithm::SemiJoin => "semijoin",
            JoinAlgorithm::PerfJoin => "perf",
        }
    }

    /// All variants evaluated in the paper's experiments.
    pub fn paper_variants() -> [JoinAlgorithm; 6] {
        [
            JoinAlgorithm::DbSide { bloom: false },
            JoinAlgorithm::DbSide { bloom: true },
            JoinAlgorithm::Broadcast,
            JoinAlgorithm::Repartition { bloom: false },
            JoinAlgorithm::Repartition { bloom: true },
            JoinAlgorithm::Zigzag,
        ]
    }
}

impl std::fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execute `algorithm` for `query` on `system`, starting from clean
/// metrics; returns the result plus the movement summary.
pub fn run(
    system: &mut HybridSystem,
    query: &HybridQuery,
    algorithm: JoinAlgorithm,
) -> Result<RunOutput> {
    query.validate()?;
    system.reset_metrics();
    system.tracer.reset();
    // a previously failed run may have left in-flight messages behind
    system.fabric.purge();
    let result = match algorithm {
        JoinAlgorithm::DbSide { bloom } => db_side::execute(system, query, bloom)?,
        JoinAlgorithm::Broadcast => broadcast::execute(system, query)?,
        JoinAlgorithm::Repartition { bloom } => repartition::execute(system, query, bloom)?,
        JoinAlgorithm::Zigzag => zigzag::execute(system, query)?,
        JoinAlgorithm::SemiJoin => semijoin::execute(system, query)?,
        JoinAlgorithm::PerfJoin => perf::execute(system, query)?,
    };
    let snapshot = system.metrics.snapshot();
    let mut timeline = system.tracer.timeline();
    // Per-link-class transfer totals ride along with the spans so one
    // artifact feeds both the Gantt view and the byte accounting.
    timeline.totals = snapshot
        .iter()
        .filter(|(k, _)| k.starts_with("net."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    Ok(RunOutput {
        result,
        summary: JoinSummary::from_snapshot(&snapshot),
        snapshot,
        timeline,
    })
}

// ---------------------------------------------------------------------------
// shared plumbing
// ---------------------------------------------------------------------------

/// Rows per `Data` message — data is streamed in chunks, as JEN's send
/// buffers do, rather than one giant message.
pub(crate) const CHUNK_ROWS: usize = 4096;

/// Send `batch` as chunked data messages on `stream` (no EOS).
pub(crate) fn send_data(
    sys: &HybridSystem,
    from: Endpoint,
    to: Endpoint,
    stream: StreamTag,
    batch: &Batch,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    for chunk in batch.chunks(CHUNK_ROWS) {
        sys.fabric.send(
            from,
            to,
            Message::Data {
                stream,
                batch: chunk,
            },
        )?;
    }
    Ok(())
}

/// Send an end-of-stream marker.
pub(crate) fn send_eos(
    sys: &HybridSystem,
    from: Endpoint,
    to: Endpoint,
    stream: StreamTag,
) -> Result<()> {
    sys.fabric.send(from, to, Message::Eos { stream })
}

/// A per-endpoint demultiplexer: pulls deliveries off the endpoint's inbox,
/// buffering messages for streams other than the one currently awaited.
///
/// A zigzag JEN worker's inbox legitimately interleaves shuffled HDFS
/// batches with (later) database tuples; the mailbox lets the algorithm
/// consume one logical stream at a time without losing the other.
pub(crate) struct Mailbox {
    endpoint: Endpoint,
    rx: crossbeam::channel::Receiver<Delivery<Message>>,
    buffered: HashMap<StreamTag, Vec<Delivery<Message>>>,
    eos_seen: HashMap<StreamTag, usize>,
    timeout: std::time::Duration,
}

/// Everything received on one stream.
#[derive(Debug, Default)]
pub(crate) struct StreamData {
    pub batches: Vec<Batch>,
    /// Sender of each batch, aligned with `batches` (channels are FIFO, so
    /// per-sender arrival order is send order).
    pub batch_senders: Vec<Endpoint>,
    pub blooms: Vec<Vec<u8>>,
}

impl Mailbox {
    pub(crate) fn new(sys: &HybridSystem, endpoint: Endpoint) -> Result<Mailbox> {
        Ok(Mailbox {
            endpoint,
            rx: sys.fabric.receiver(endpoint)?,
            buffered: HashMap::new(),
            eos_seen: HashMap::new(),
            timeout: sys.config.recv_timeout,
        })
    }

    /// Block until `expected_eos` end-of-stream markers have arrived on
    /// `stream`; return all of its data. Messages of other streams are
    /// buffered for later `take_stream` calls.
    pub(crate) fn take_stream(
        &mut self,
        stream: StreamTag,
        expected_eos: usize,
    ) -> Result<StreamData> {
        let mut out = StreamData::default();
        // consume anything already buffered for this stream
        for d in self.buffered.remove(&stream).unwrap_or_default() {
            absorb(&mut out, d.from, d.msg);
        }
        while self.eos_seen.get(&stream).copied().unwrap_or(0) < expected_eos {
            let d = self.rx.recv_timeout(self.timeout).map_err(|_| {
                HybridError::Net(format!(
                    "{} timed out waiting for {stream:?} ({}/{} EOS)",
                    self.endpoint,
                    self.eos_seen.get(&stream).copied().unwrap_or(0),
                    expected_eos
                ))
            })?;
            let tag = d.msg.stream();
            if let Message::Eos { .. } = d.msg {
                *self.eos_seen.entry(tag).or_insert(0) += 1;
                continue;
            }
            if tag == stream {
                absorb(&mut out, d.from, d.msg);
            } else {
                self.buffered.entry(tag).or_default().push(d);
            }
        }
        Ok(out)
    }
}

fn absorb(out: &mut StreamData, from: Endpoint, msg: Message) {
    match msg {
        Message::Data { batch, .. } => {
            out.batch_senders.push(from);
            out.batches.push(batch);
        }
        Message::Bloom { bytes, .. } => out.blooms.push(bytes),
        Message::Eos { .. } => unreachable!("EOS handled by caller"),
    }
}

/// HDFS-side epilogue shared by broadcast/repartition/zigzag/semijoin:
/// partial aggregates travel to the designated worker, which merges them
/// and ships the final result to DB worker 0 (Figures 2–4, final steps).
///
/// `partials[w]` is worker `w`'s partial aggregate batch.
pub(crate) fn hdfs_side_final_aggregation(
    sys: &HybridSystem,
    query: &HybridQuery,
    partials: Vec<Batch>,
) -> Result<Batch> {
    let designated = sys.coordinator.designated_worker()?;
    let agg_span = sys
        .tracer
        .start(format!("jen-{}", designated.index()), Stage::Aggregate);
    let mut merger = HashAggregator::new(query.aggs.clone());
    let mut expected = 0usize;
    for (w, partial) in partials.iter().enumerate() {
        if w == designated.index() {
            merger.merge_partial(partial)?;
        } else {
            let from = Endpoint::Jen(hybrid_common::ids::JenWorkerId(w));
            let to = Endpoint::Jen(designated);
            send_data(sys, from, to, StreamTag::PartialAgg, partial)?;
            send_eos(sys, from, to, StreamTag::PartialAgg)?;
            expected += 1;
        }
    }
    let mut mailbox = Mailbox::new(sys, Endpoint::Jen(designated))?;
    let received = mailbox.take_stream(StreamTag::PartialAgg, expected)?;
    for p in &received.batches {
        merger.merge_partial(p)?;
    }
    let final_batch = merger.finish();
    agg_span.done(0, final_batch.num_rows() as u64);

    // ship to the database (a single DB worker returns it to the user)
    let db0 = Endpoint::Db(DbWorkerId(0));
    let from = Endpoint::Jen(designated);
    send_data(sys, from, db0, StreamTag::FinalResult, &final_batch)?;
    send_eos(sys, from, db0, StreamTag::FinalResult)?;
    let mut db_mailbox = Mailbox::new(sys, db0)?;
    let result = db_mailbox.take_stream(StreamTag::FinalResult, 1)?;
    if result.batches.is_empty() {
        return Ok(final_batch); // empty result: EOS only
    }
    Batch::concat(final_batch.schema().clone(), &result.batches)
}

/// The database half every algorithm starts with: apply local predicates
/// and projection on each DB worker, producing `T'` (Fig. 1–4, step 1).
pub(crate) fn db_apply_local(sys: &HybridSystem, query: &HybridQuery) -> Result<Vec<Batch>> {
    let span = sys.tracer.start("db", Stage::Scan);
    let parts = sys
        .db
        .scan_filter_project(&query.db_table, &query.db_pred, &query.db_proj)?;
    let rows: u64 = parts.iter().map(|b| b.num_rows() as u64).sum();
    span.done(0, rows);
    sys.metrics.add("core.t_prime_rows", rows);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::system::SystemConfig;
    use hybrid_bloom::BloomParams;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::expr::Expr;
    use hybrid_common::hash::splitmix64;
    use hybrid_common::ops::AggSpec;
    use hybrid_common::schema::Schema;
    use hybrid_storage::FileFormat;

    fn t_schema() -> Schema {
        Schema::from_pairs(&[
            ("uniqKey", DataType::I64),
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("tdate", DataType::Date),
        ])
    }

    fn l_schema() -> Schema {
        Schema::from_pairs(&[
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("ldate", DataType::Date),
            ("grp", DataType::Utf8),
        ])
    }

    /// Deterministic pseudo-random tables: T has 400 rows over 50 keys,
    /// L has 1200 rows over 80 keys (keys 0..50 overlap T).
    fn t_data() -> Batch {
        let n = 400usize;
        Batch::new(
            t_schema(),
            vec![
                Column::I64((0..n as i64).collect()),
                Column::I32((0..n).map(|i| (splitmix64(i as u64) % 50) as i32).collect()),
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 7) % 100) as i32)
                        .collect(),
                ),
                Column::Date(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 9) % 30) as i32)
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    fn l_data() -> Batch {
        let n = 1200usize;
        Batch::new(
            l_schema(),
            vec![
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 100) % 80) as i32)
                        .collect(),
                ),
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 101) % 100) as i32)
                        .collect(),
                ),
                Column::Date(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 102) % 30) as i32)
                        .collect(),
                ),
                Column::Utf8(
                    (0..n)
                        .map(|i| format!("url_{}/p", splitmix64(i as u64 ^ 103) % 7))
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    fn paper_query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(2, 49),
            db_proj: vec![1, 3], // joinKey, tdate
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 59),
            hdfs_proj: vec![0, 2, 3], // joinKey, ldate, grp
            hdfs_key: 0,
            post_predicate: Some(
                Expr::col(1)
                    .sub(Expr::col(3))
                    .ge(Expr::lit_i64(0))
                    .and(Expr::col(1).sub(Expr::col(3)).le(Expr::lit_i64(1))),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(4))),
            aggs: vec![AggSpec::Count],
            bloom: BloomParams::new(1 << 12, 2).unwrap(),
        }
    }

    fn system(format: FileFormat) -> HybridSystem {
        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 100;
        let mut sys = HybridSystem::new(cfg).unwrap();
        sys.load_db_table("T", 0, t_data()).unwrap();
        sys.create_db_index("T", &[2, 1]).unwrap();
        sys.load_hdfs_table("L", format, l_schema(), &l_data())
            .unwrap();
        sys
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let expected = run_reference(&t_data(), &l_data(), &paper_query()).unwrap();
        assert!(expected.num_rows() > 0, "test query must be non-trivial");
        for format in [FileFormat::Columnar, FileFormat::Text] {
            let mut sys = system(format);
            for alg in JoinAlgorithm::paper_variants()
                .into_iter()
                .chain([JoinAlgorithm::SemiJoin])
            {
                let out = run(&mut sys, &paper_query(), alg).unwrap();
                assert_eq!(
                    out.result, expected,
                    "algorithm {alg} diverged on {format} format"
                );
            }
        }
    }

    /// Cross-algorithm, cross-format invariants of one run:
    /// * every algorithm on every storage format returns the bit-identical
    ///   aggregated result;
    /// * the *set* of pipeline stages an algorithm records is a property of
    ///   the algorithm, not of the storage format — both formats must
    ///   produce identical Timeline stage-name sets;
    /// * every timeline is non-empty, scans on a JEN worker, and stays
    ///   within the tracer's clock (spans ordered, inside the makespan).
    #[test]
    fn cross_format_results_and_stage_sets_identical() {
        let expected = run_reference(&t_data(), &l_data(), &paper_query()).unwrap();
        assert!(expected.num_rows() > 0, "test query must be non-trivial");
        for alg in JoinAlgorithm::paper_variants()
            .into_iter()
            .chain([JoinAlgorithm::SemiJoin, JoinAlgorithm::PerfJoin])
        {
            let mut stage_sets = Vec::new();
            for format in [FileFormat::Columnar, FileFormat::Text] {
                let mut sys = system(format);
                let out = run(&mut sys, &paper_query(), alg).unwrap();
                assert_eq!(
                    out.result, expected,
                    "algorithm {alg} diverged on {format} format"
                );
                assert!(
                    !out.timeline.spans.is_empty(),
                    "{alg} on {format} recorded no spans"
                );
                assert!(
                    out.timeline
                        .spans
                        .iter()
                        .any(|s| s.worker.starts_with("jen-")
                            && s.stage == hybrid_common::trace::Stage::Scan),
                    "{alg} on {format} has no JEN scan span"
                );
                let makespan = out.timeline.makespan_us();
                for s in &out.timeline.spans {
                    assert!(s.t_start <= s.t_end, "{alg}: span ends before it starts");
                    assert!(s.t_end <= makespan, "{alg}: span outside makespan");
                }
                stage_sets.push(out.timeline.stage_names());
            }
            assert_eq!(
                stage_sets[0], stage_sets[1],
                "algorithm {alg}: stage set differs between storage formats"
            );
        }
    }

    #[test]
    fn bloom_variants_move_fewer_tuples() {
        let mut sys = system(FileFormat::Columnar);
        let q = paper_query();
        let plain = run(&mut sys, &q, JoinAlgorithm::Repartition { bloom: false }).unwrap();
        let bloomed = run(&mut sys, &q, JoinAlgorithm::Repartition { bloom: true }).unwrap();
        let zz = run(&mut sys, &q, JoinAlgorithm::Zigzag).unwrap();
        assert!(
            bloomed.summary.hdfs_tuples_shuffled <= plain.summary.hdfs_tuples_shuffled,
            "BF should not increase shuffle volume"
        );
        assert!(
            zz.summary.db_tuples_sent <= bloomed.summary.db_tuples_sent,
            "zigzag's BF_H should shrink the DB transfer"
        );
    }

    #[test]
    fn db_side_bloom_reduces_cross_traffic() {
        let mut sys = system(FileFormat::Columnar);
        let q = paper_query();
        let plain = run(&mut sys, &q, JoinAlgorithm::DbSide { bloom: false }).unwrap();
        let bloomed = run(&mut sys, &q, JoinAlgorithm::DbSide { bloom: true }).unwrap();
        assert!(bloomed.summary.hdfs_tuples_sent <= plain.summary.hdfs_tuples_sent);
        assert!(plain.summary.hdfs_tuples_sent > 0);
    }

    #[test]
    fn broadcast_sends_t_prime_to_every_worker() {
        let mut sys = system(FileFormat::Columnar);
        let q = paper_query();
        let out = run(&mut sys, &q, JoinAlgorithm::Broadcast).unwrap();
        // T' rows × 4 JEN workers
        let t_rows: u64 = db_apply_local(&sys, &q)
            .unwrap()
            .iter()
            .map(|b| b.num_rows() as u64)
            .sum();
        assert_eq!(out.summary.db_tuples_sent, t_rows * 4);
        assert_eq!(
            out.summary.hdfs_tuples_shuffled, 0,
            "broadcast never shuffles HDFS data"
        );
    }

    #[test]
    fn mailbox_demultiplexes_streams() {
        let sys = HybridSystem::new(SystemConfig::paper_shape(1, 2)).unwrap();
        let j0 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(0));
        let j1 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(1));
        let mk = |n: i32| {
            Batch::new(
                Schema::from_pairs(&[("x", DataType::I32)]),
                vec![Column::I32(vec![n])],
            )
            .unwrap()
        };
        // interleave two streams
        send_data(&sys, j1, j0, StreamTag::HdfsShuffle, &mk(1)).unwrap();
        send_data(&sys, j1, j0, StreamTag::DbData, &mk(2)).unwrap();
        send_data(&sys, j1, j0, StreamTag::HdfsShuffle, &mk(3)).unwrap();
        send_eos(&sys, j1, j0, StreamTag::HdfsShuffle).unwrap();
        send_eos(&sys, j1, j0, StreamTag::DbData).unwrap();
        let mut mb = Mailbox::new(&sys, j0).unwrap();
        let shuffle = mb.take_stream(StreamTag::HdfsShuffle, 1).unwrap();
        assert_eq!(shuffle.batches.len(), 2);
        let db = mb.take_stream(StreamTag::DbData, 1).unwrap();
        assert_eq!(db.batches.len(), 1);
        assert_eq!(db.batches[0].column(0).unwrap().as_i32().unwrap(), &[2]);
    }

    #[test]
    fn mailbox_timeout_on_missing_eos() {
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.recv_timeout = std::time::Duration::from_millis(20);
        let sys = HybridSystem::new(cfg).unwrap();
        let j0 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(0));
        let mut mb = Mailbox::new(&sys, j0).unwrap();
        let err = mb.take_stream(StreamTag::DbData, 1).unwrap_err();
        assert!(matches!(err, HybridError::Net(_)));
    }

    #[test]
    fn algorithm_names_are_unique() {
        let mut names: Vec<&str> = JoinAlgorithm::paper_variants()
            .into_iter()
            .chain([JoinAlgorithm::SemiJoin])
            .map(|a| a.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn single_worker_clusters_work() {
        // degenerate 1×1 deployment exercises the "no peers" paths
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.rows_per_block = 64;
        let mut sys = HybridSystem::new(cfg).unwrap();
        sys.load_db_table("T", 0, t_data()).unwrap();
        sys.load_hdfs_table("L", FileFormat::Columnar, l_schema(), &l_data())
            .unwrap();
        let expected = run_reference(&t_data(), &l_data(), &paper_query()).unwrap();
        for alg in JoinAlgorithm::paper_variants() {
            let out = run(&mut sys, &paper_query(), alg).unwrap();
            assert_eq!(out.result, expected, "algorithm {alg} on 1x1");
        }
    }
}
