//! The join algorithms and their shared plumbing.
//!
//! Every algorithm is a pure orchestration over the substrates: database
//! scans and Bloom UDFs from `hybrid-edw`, block scans from `hybrid-jen`,
//! and metered transfers over the `hybrid-net` fabric. The orchestration
//! here executes the steps of Figures 1–4 in their stated order; the data
//! volumes that the paper's evaluation hinges on are measured, not modeled.

pub mod broadcast;
pub mod db_side;
pub mod driver;
pub mod perf;
pub mod repartition;
pub mod semijoin;
pub mod zigzag;

pub use driver::{CancelToken, Driver, TaskSet};

use crate::query::HybridQuery;
use crate::skew::{SaltCursors, SaltRouter};
use crate::stats::{JoinSummary, RunOutput};
use crate::system::HybridSystem;
use hybrid_bloom::BloomFilter;
use hybrid_common::batch::{Batch, BatchBuilder, SelectionVector};
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::ops::{partition_by_key, partition_sel, HashAggregator};
use hybrid_common::schema::Schema;
use hybrid_common::trace::Stage;
use hybrid_jen::LocalJoiner;
use hybrid_net::{Delivery, Endpoint, Fabric, Message, SendAttempt, StreamTag};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which join strategy to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Fetch filtered HDFS data into the database; join there (§3.1).
    DbSide { bloom: bool },
    /// Broadcast the filtered database table to every JEN worker (§3.2).
    Broadcast,
    /// Shuffle both filtered tables to JEN workers by the agreed hash (§3.3).
    Repartition { bloom: bool },
    /// 2-way Bloom filters; join on the HDFS side (§3.4).
    Zigzag,
    /// Repartition with an exact key set instead of `BF_DB` (the classic
    /// semi-join baseline the paper contrasts Bloom joins against, §6).
    SemiJoin,
    /// PERF join (Li & Ross, §6): positional bitmaps instead of a reverse
    /// Bloom filter — exact, but its forward transfer duplicates keys per
    /// tuple.
    PerfJoin,
}

impl JoinAlgorithm {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgorithm::DbSide { bloom: false } => "db",
            JoinAlgorithm::DbSide { bloom: true } => "db(BF)",
            JoinAlgorithm::Broadcast => "broadcast",
            JoinAlgorithm::Repartition { bloom: false } => "repartition",
            JoinAlgorithm::Repartition { bloom: true } => "repartition(BF)",
            JoinAlgorithm::Zigzag => "zigzag",
            JoinAlgorithm::SemiJoin => "semijoin",
            JoinAlgorithm::PerfJoin => "perf",
        }
    }

    /// All variants evaluated in the paper's experiments.
    pub fn paper_variants() -> [JoinAlgorithm; 6] {
        [
            JoinAlgorithm::DbSide { bloom: false },
            JoinAlgorithm::DbSide { bloom: true },
            JoinAlgorithm::Broadcast,
            JoinAlgorithm::Repartition { bloom: false },
            JoinAlgorithm::Repartition { bloom: true },
            JoinAlgorithm::Zigzag,
        ]
    }
}

impl std::fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execute `algorithm` for `query` on `system`, starting from clean
/// metrics; returns the result plus the movement summary.
pub fn run(
    system: &mut HybridSystem,
    query: &HybridQuery,
    algorithm: JoinAlgorithm,
) -> Result<RunOutput> {
    prepare_run(system, query)?;
    let result = dispatch(system, query, algorithm)?;
    Ok(finish_run(system, result))
}

/// The prologue every run shares: validate, claim a memory grant on a
/// budgeted system, and start from clean metrics, spans, and fabric.
pub(crate) fn prepare_run(system: &mut HybridSystem, query: &HybridQuery) -> Result<()> {
    query.validate()?;
    // A direct run on a budgeted system claims whatever the pool has left
    // (the query service instead injects an admission-sized share into each
    // session before running). The grant sticks for subsequent runs on this
    // system — one system, one resident query.
    if system.query_budget.is_none() && system.mem_pool.is_bounded() {
        system.query_budget = Some(system.mem_pool.reserve_remaining("direct-run")?);
    }
    system.reset_metrics();
    system.tracer.reset();
    // a previously failed run may have left in-flight messages behind
    system.fabric.purge();
    Ok(())
}

/// Execute one strategy start to finish (no metric/tracer reset — callers
/// go through [`prepare_run`] first).
pub(crate) fn dispatch(
    system: &mut HybridSystem,
    query: &HybridQuery,
    algorithm: JoinAlgorithm,
) -> Result<Batch> {
    match algorithm {
        JoinAlgorithm::DbSide { bloom } => db_side::execute(system, query, bloom),
        JoinAlgorithm::Broadcast => broadcast::execute(system, query),
        JoinAlgorithm::Repartition { bloom } => repartition::execute(system, query, bloom),
        JoinAlgorithm::Zigzag => zigzag::execute(system, query),
        JoinAlgorithm::SemiJoin => semijoin::execute(system, query),
        JoinAlgorithm::PerfJoin => perf::execute(system, query),
    }
}

/// The epilogue every run shares: snapshot the counters, derive the
/// shuffle-balance ratio, and package the timeline.
pub(crate) fn finish_run(system: &HybridSystem, result: Batch) -> RunOutput {
    let mut snapshot = system.metrics.snapshot();
    // Derived shuffle-balance ratio: max per-worker build load over the
    // mean across all JEN workers, ×1000 in integer arithmetic so the
    // ratio lives in the u64 registry and stays schedule-independent.
    let per_worker_max = snapshot
        .iter()
        .filter(|(k, _)| k.starts_with("net.shuffle.rows.jen-"))
        .map(|(_, v)| *v)
        .max();
    if let Some(max) = per_worker_max {
        let sum: u64 = snapshot
            .iter()
            .filter(|(k, _)| k.starts_with("net.shuffle.rows.jen-"))
            .map(|(_, v)| *v)
            .sum();
        if let Some(ratio) = (max * 1000 * system.config.jen_workers as u64).checked_div(sum) {
            snapshot.insert("net.shuffle.max_over_mean_x1000".to_string(), ratio);
        }
    }
    let mut timeline = system.tracer.timeline();
    // Per-link-class transfer totals ride along with the spans so one
    // artifact feeds both the Gantt view and the byte accounting.
    timeline.totals = snapshot
        .iter()
        .filter(|(k, _)| k.starts_with("net."))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    RunOutput {
        result,
        summary: JoinSummary::from_snapshot(&snapshot),
        snapshot,
        timeline,
    }
}

// ---------------------------------------------------------------------------
// shared plumbing
// ---------------------------------------------------------------------------

/// How long one blocking wait on the inbox lasts before the mailbox
/// re-checks cancellation / disconnection. Invisible to throughput (the
/// wait returns immediately when a message is ready); small enough that a
/// failed peer aborts the cluster promptly.
const RECV_SLICE: Duration = Duration::from_millis(25);

/// Inbox-drain slice while a pump-send waits for the target inbox to free
/// up — short, because the send should retry eagerly.
const PUMP_SLICE: Duration = Duration::from_millis(1);

/// A per-endpoint demultiplexer: pulls deliveries off the endpoint's inbox,
/// buffering messages for streams other than the one currently awaited.
///
/// A zigzag JEN worker's inbox legitimately interleaves shuffled HDFS
/// batches with (later) database tuples; the mailbox lets the algorithm
/// consume one logical stream at a time without losing the other.
///
/// The mailbox is also the *sending* half of a worker task: its pump-based
/// [`Mailbox::send`] retries a full bounded inbox while draining its own —
/// the property that makes an all-to-all shuffle over bounded channels
/// deadlock-free (a cycle of senders blocked on each other's full inboxes
/// cannot form, because every blocked sender keeps consuming).
pub(crate) struct Mailbox {
    endpoint: Endpoint,
    fabric: Fabric<Message>,
    rx: crossbeam::channel::Receiver<Delivery<Message>>,
    buffered: HashMap<StreamTag, Vec<Delivery<Message>>>,
    eos_seen: HashMap<StreamTag, usize>,
    /// Rows per `Data` message ([`SystemConfig::batch_rows`]): 1 replays
    /// one-tuple-at-a-time framing, the default matches the historical
    /// fixed 4096-row chunking.
    ///
    /// [`SystemConfig::batch_rows`]: crate::system::SystemConfig::batch_rows
    chunk_rows: usize,
    /// Sequence numbers already absorbed, per sender and stream. A chaos
    /// plan may retransmit a delivery (same `seq`); the duplicate must be
    /// discarded here — a duplicated EOS would otherwise inflate
    /// `eos_seen` and silently truncate the stream. Fault-free deliveries
    /// carry `seq == 0` and skip this set entirely.
    seen: HashSet<(Endpoint, StreamTag, u64)>,
    timeout: Duration,
    cancel: Option<CancelToken>,
}

/// Everything received on one stream.
#[derive(Debug, Default)]
pub(crate) struct StreamData {
    pub batches: Vec<Batch>,
    /// Sender of each batch, aligned with `batches` (channels are FIFO, so
    /// per-sender arrival order is send order).
    pub batch_senders: Vec<Endpoint>,
    pub blooms: Vec<Vec<u8>>,
    /// Sender of each Bloom payload, aligned with `blooms` — under parallel
    /// execution arrival order is arbitrary, so consumers that care which
    /// worker produced a filter/bitmap must index by sender, never by
    /// position.
    pub bloom_senders: Vec<Endpoint>,
}

impl Mailbox {
    pub(crate) fn new(sys: &HybridSystem, endpoint: Endpoint) -> Result<Mailbox> {
        Ok(Mailbox {
            endpoint,
            fabric: sys.fabric.clone(),
            rx: sys.fabric.receiver(endpoint)?,
            buffered: HashMap::new(),
            eos_seen: HashMap::new(),
            seen: HashSet::new(),
            chunk_rows: sys.config.batch_rows,
            timeout: sys.config.recv_timeout,
            cancel: None,
        })
    }

    /// Abort blocking waits when `token` trips (a peer worker failed).
    pub(crate) fn with_cancel(mut self, token: CancelToken) -> Mailbox {
        self.cancel = Some(token);
        self
    }

    fn check_liveness(&self, awaiting: Option<StreamTag>) -> Result<()> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(HybridError::Cancelled {
                    worker: self.endpoint.to_string(),
                });
            }
        }
        if self.fabric.is_disconnected(self.endpoint) {
            // this worker was killed by failure injection: typed error,
            // carrying the stream it was serving when it died
            return Err(HybridError::Disconnected {
                endpoint: self.endpoint.to_string(),
                stream: awaiting.map(|s| s.label().to_string()),
            });
        }
        Ok(())
    }

    /// File one delivery into the stream buffers / EOS counts. Chaos
    /// retransmissions (same sender, stream, and non-zero sequence number
    /// as an earlier delivery) are dropped here, exactly once per
    /// duplicate.
    fn absorb_delivery(&mut self, d: Delivery<Message>) {
        let tag = d.msg.stream();
        if d.seq != 0 && !self.seen.insert((d.from, tag, d.seq)) {
            self.fabric.chaos_incr("net.chaos.deduped");
            return;
        }
        if let Message::Eos { .. } = d.msg {
            *self.eos_seen.entry(tag).or_insert(0) += 1;
        } else {
            self.buffered.entry(tag).or_default().push(d);
        }
    }

    /// Send one message, never blocking the fabric: while the target inbox
    /// is full, drain this endpoint's own inbox into the stream buffers and
    /// retry. Gives up with a Net error after the receive timeout.
    ///
    /// Under an active chaos plan this is also the recovery loop: an
    /// injected drop burns one attempt of the fabric's [`RetryPolicy`]
    /// budget and the message is retried after a backoff sleep; only an
    /// exhausted budget surfaces the typed `FaultInjected` error. A `Full`
    /// hand-back is congestion, not a fault — it never consumes an attempt.
    ///
    /// [`RetryPolicy`]: hybrid_net::RetryPolicy
    pub(crate) fn send(&mut self, to: Endpoint, msg: Message) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let retry = self.fabric.retry_policy().clone();
        let mut msg = msg;
        let mut attempt = 0u32;
        loop {
            match self
                .fabric
                .try_send_attempt(self.endpoint, to, msg, attempt)?
            {
                SendAttempt::Delivered => return Ok(()),
                SendAttempt::Full(back) => {
                    msg = back;
                    self.check_liveness(Some(msg.stream()))?;
                    if Instant::now() >= deadline {
                        return Err(HybridError::Net(format!(
                            "{} send to {to} stalled on a full inbox",
                            self.endpoint
                        )));
                    }
                    if let Ok(d) = self.rx.recv_timeout(PUMP_SLICE) {
                        self.absorb_delivery(d);
                    }
                }
                SendAttempt::Dropped(back, err) => {
                    attempt += 1;
                    if attempt >= retry.attempts.max(1) {
                        return Err(err);
                    }
                    self.fabric.chaos_incr("net.chaos.send_retries");
                    self.check_liveness(Some(back.stream()))?;
                    std::thread::sleep(retry.backoff(attempt));
                    msg = back;
                }
            }
        }
    }

    /// Send `batch` as chunked data messages on `stream` (no EOS).
    pub(crate) fn send_data(
        &mut self,
        to: Endpoint,
        stream: StreamTag,
        batch: &Batch,
    ) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        for chunk in batch.chunks(self.chunk_rows) {
            self.send(
                to,
                Message::Data {
                    stream,
                    batch: chunk,
                },
            )?;
        }
        Ok(())
    }

    /// Send an end-of-stream marker.
    pub(crate) fn send_eos(&mut self, to: Endpoint, stream: StreamTag) -> Result<()> {
        self.send(to, Message::Eos { stream })
    }

    /// Send a serialized Bloom filter / bitmap payload.
    pub(crate) fn send_bloom(
        &mut self,
        to: Endpoint,
        stream: StreamTag,
        bytes: Vec<u8>,
    ) -> Result<()> {
        self.send(to, Message::Bloom { stream, bytes })
    }

    /// Block until `expected_eos` end-of-stream markers have arrived on
    /// `stream`; return all of its data. Messages of other streams are
    /// buffered for later `take_stream` calls. The wait is sliced so a
    /// cancelled run or a disconnected endpoint aborts promptly; the idle
    /// timeout (no message for `recv_timeout`) stays a generic Net error.
    pub(crate) fn take_stream(
        &mut self,
        stream: StreamTag,
        expected_eos: usize,
    ) -> Result<StreamData> {
        let mut out = StreamData::default();
        let mut deadline = Instant::now() + self.timeout;
        loop {
            for d in self.buffered.remove(&stream).unwrap_or_default() {
                absorb(&mut out, d.from, d.msg);
            }
            if self.eos_seen.get(&stream).copied().unwrap_or(0) >= expected_eos {
                return Ok(out);
            }
            // one sliced wait; any delivery (on any stream) resets the
            // idle clock, matching the per-receive timeout this replaced
            loop {
                self.check_liveness(Some(stream))?;
                let now = Instant::now();
                if now >= deadline {
                    return Err(HybridError::Net(format!(
                        "{} timed out waiting for {stream:?} ({}/{} EOS)",
                        self.endpoint,
                        self.eos_seen.get(&stream).copied().unwrap_or(0),
                        expected_eos
                    )));
                }
                let slice = RECV_SLICE.min(deadline - now);
                if let Ok(d) = self.rx.recv_timeout(slice) {
                    self.absorb_delivery(d);
                    deadline = Instant::now() + self.timeout;
                    break;
                }
            }
        }
    }
}

fn absorb(out: &mut StreamData, from: Endpoint, msg: Message) {
    match msg {
        Message::Data { batch, .. } => {
            out.batch_senders.push(from);
            out.batches.push(batch);
        }
        Message::Bloom { bytes, .. } => {
            out.bloom_senders.push(from);
            out.blooms.push(bytes);
        }
        Message::Eos { .. } => unreachable!("EOS handled by caller"),
    }
}

// ---------------------------------------------------------------------------
// per-worker task states and shared steps
// ---------------------------------------------------------------------------

/// Per-worker state threaded through a JEN [`TaskSet`].
pub(crate) struct JenTask {
    pub mailbox: Mailbox,
    /// This worker's own shuffle partition (never crosses the wire).
    pub local_part: Option<Batch>,
    /// The local hash joiner, built on the shuffled HDFS data.
    pub joiner: Option<LocalJoiner>,
    /// This worker's partial aggregate.
    pub partial: Option<Batch>,
    /// A locally built Bloom filter awaiting the global merge (zigzag BF_H).
    pub local_bf: Option<BloomFilter>,
    /// This worker's filtered scan output, parked across an adaptive
    /// observation point ([`crate::adapt`]): the prescan phase stores the
    /// per-block batches here so a continued — or replanned — plan never
    /// re-reads `L`.
    pub scanned: Option<Vec<Batch>>,
}

/// Per-worker state threaded through a DB [`TaskSet`].
pub(crate) struct DbTask {
    pub mailbox: Mailbox,
    /// This worker's `T'` partition.
    pub part: Option<Batch>,
    /// Locally collected distinct join keys (semi-join).
    pub keys: Option<Batch>,
    /// HDFS data landed on this worker (DB-side join).
    pub landed: Option<Batch>,
    /// The final query result (worker 0 only).
    pub result: Option<Batch>,
}

pub(crate) fn jen_tasks(sys: &HybridSystem, driver: &Driver) -> Result<Vec<JenTask>> {
    sys.jen_workers
        .iter()
        .map(|w| {
            Ok(JenTask {
                mailbox: Mailbox::new(sys, Endpoint::Jen(w.id()))?
                    .with_cancel(driver.cancel_token()),
                local_part: None,
                joiner: None,
                partial: None,
                local_bf: None,
                scanned: None,
            })
        })
        .collect()
}

pub(crate) fn db_tasks(sys: &HybridSystem, driver: &Driver) -> Result<Vec<DbTask>> {
    (0..sys.config.db_workers)
        .map(|w| {
            Ok(DbTask {
                mailbox: Mailbox::new(sys, Endpoint::Db(DbWorkerId(w)))?
                    .with_cancel(driver.cancel_token()),
                part: None,
                keys: None,
                landed: None,
                result: None,
            })
        })
        .collect()
}

/// The schema of `T'` (the DB table after projection), known before any
/// worker has scanned — probe steps need it even when zero rows arrive.
pub(crate) fn t_prime_schema(sys: &HybridSystem, query: &HybridQuery) -> Result<Schema> {
    sys.db
        .worker(0)
        .partition(&query.db_table)?
        .schema()
        .project(&query.db_proj)
}

/// The DB step every algorithm starts with, per worker: apply local
/// predicates and projection, producing this worker's slice of `T'`
/// (Fig. 1–4, step 1).
pub(crate) fn db_scan_step(
    sys: &HybridSystem,
    query: &HybridQuery,
    driver: &Driver,
    w: usize,
) -> Result<Batch> {
    let _permit = driver.compute_permit();
    let span = sys.tracer.start(format!("db-{w}"), Stage::Scan);
    let part =
        sys.db
            .worker(w)
            .scan_filter_project(&query.db_table, &query.db_pred, &query.db_proj)?;
    let rows = part.num_rows() as u64;
    span.done(0, rows);
    sys.metrics.add("core.t_prime_rows", rows);
    Ok(part)
}

/// DB worker 0 builds the global `BF_DB` and multicasts it (with EOS) to
/// every JEN worker. The per-partition filters and their merge are metered
/// inside `build_global_bloom` exactly as before.
///
/// When the system has a cross-query Bloom cache, the serialized filter is
/// looked up there first — a hit skips the per-partition build entirely
/// (the cached bytes are exactly what a cold build would multicast) and
/// the multicast proceeds as usual on this query's own fabric namespace.
pub(crate) fn db_build_and_multicast_bloom(
    sys: &HybridSystem,
    query: &HybridQuery,
    st: &mut DbTask,
) -> Result<()> {
    let bf_span = sys.tracer.start("db", Stage::BloomBuild);
    let bytes: Arc<Vec<u8>> = match &sys.bloom_cache {
        Some(cache) => {
            let key = crate::cache::BloomKey::for_query(query);
            match cache.get(&key) {
                Some(cached) => cached,
                None => {
                    // Snapshot the table's load generation before reading
                    // it: if a rewrite lands mid-build (sessions keep the
                    // old partitions alive via `Arc`), the insert below is
                    // dropped instead of caching a pre-rewrite filter.
                    let generation = cache.generation(&query.db_table);
                    let bf = sys.db.build_global_bloom(
                        &query.db_table,
                        &query.db_pred,
                        query.db_key_base(),
                        query.bloom,
                    )?;
                    let fresh = Arc::new(bf.to_bytes());
                    cache.insert(key, Arc::clone(&fresh), generation);
                    fresh
                }
            }
        }
        None => {
            let bf = sys.db.build_global_bloom(
                &query.db_table,
                &query.db_pred,
                query.db_key_base(),
                query.bloom,
            )?;
            Arc::new(bf.to_bytes())
        }
    };
    bf_span.done(bytes.len() as u64, 0);
    for jen in sys.fabric.jen_endpoints() {
        st.mailbox
            .send_bloom(jen, StreamTag::DbBloom, bytes.as_ref().clone())?;
        st.mailbox.send_eos(jen, StreamTag::DbBloom)?;
    }
    Ok(())
}

/// Wait for a single Bloom filter on `stream` and deserialize it.
pub(crate) fn jen_take_bloom(st: &mut JenTask, stream: StreamTag) -> Result<Option<BloomFilter>> {
    let got = st.mailbox.take_stream(stream, 1)?;
    got.blooms
        .first()
        .map(|b| BloomFilter::from_bytes(b))
        .transpose()
}

/// Route a DB batch to the owning JEN workers with the agreed hash on
/// `DbData` (one EOS per destination), under a ShuffleSend span. With a
/// [`SaltRouter`], heavy-hitter probe rows are replicated to the key's salt
/// workers instead (the build side was split across them).
pub(crate) fn db_route_to_jen(
    sys: &HybridSystem,
    query: &HybridQuery,
    st: &mut DbTask,
    w: usize,
    batch: &Batch,
    salt: Option<&SaltRouter>,
) -> Result<()> {
    let num_jen = sys.config.jen_workers;
    let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
    let routed = match salt {
        Some(r) => r.partition_probe(batch, query.db_key)?,
        None => partition_by_key(batch, query.db_key, num_jen, agreed_shuffle_partition)?,
    };
    for (jen_idx, piece) in routed.into_iter().enumerate() {
        let dst = Endpoint::Jen(JenWorkerId(jen_idx));
        st.mailbox.send_data(dst, StreamTag::DbData, &piece)?;
        st.mailbox.send_eos(dst, StreamTag::DbData)?;
    }
    span.done(batch.serialized_bytes() as u64, batch.num_rows() as u64);
    Ok(())
}

/// Send-side accumulation buffer for one shuffle destination. Routed rows
/// append in scan order; every full `batch_rows` window ships as one
/// message and the tail stays pending. Because rows reach each destination
/// in the same order as a whole-share partition would produce them, the
/// per-destination message framing is *identical* to partitioning the
/// concatenated share and chunking it at `batch_rows` — at every batch
/// size, which is what keeps `net.*` message/byte counters independent of
/// how the scan framed its blocks.
struct ShuffleBuffer {
    schema: Schema,
    batch_rows: usize,
    pending: BatchBuilder,
}

impl ShuffleBuffer {
    fn new(schema: Schema, batch_rows: usize) -> ShuffleBuffer {
        ShuffleBuffer {
            pending: BatchBuilder::new(schema.clone()),
            schema,
            batch_rows,
        }
    }

    /// Gather-append the selected rows of `src`.
    fn append(&mut self, src: &Batch, sel: &SelectionVector) -> Result<()> {
        self.pending.append_rows(src, sel.as_slice())
    }

    /// Drain every full `batch_rows` message that is ready to ship; rows
    /// that don't yet fill a window stay pending for the next append (or
    /// the final [`ShuffleBuffer::finish`]).
    fn take_full(&mut self) -> Result<Vec<Batch>> {
        if self.pending.num_rows() < self.batch_rows {
            return Ok(Vec::new());
        }
        let drained =
            std::mem::replace(&mut self.pending, BatchBuilder::new(self.schema.clone())).finish();
        let mut full = drained.chunks(self.batch_rows);
        if let Some(last) = full.last() {
            if last.num_rows() < self.batch_rows {
                let tail = full.pop().expect("chunks of a non-empty batch");
                let keep: Vec<u32> = (0..tail.num_rows() as u32).collect();
                self.pending.append_rows(&tail, &keep)?;
            }
        }
        Ok(full)
    }

    /// The pending tail (possibly empty) as one batch.
    fn finish(self) -> Batch {
        self.pending.finish()
    }
}

/// Route this JEN worker's filtered scan output among its peers with the
/// agreed hash; the piece it owns stays local in `st.local_part`. With a
/// [`SaltRouter`], heavy-hitter build rows cycle across the key's salt
/// workers so no single worker absorbs the whole hot partition.
///
/// The scan output arrives as per-block batches: each is routed with one
/// selection-vector pass (no per-row dispatch) into per-destination
/// [`ShuffleBuffer`]s, so shuffling overlaps the scan's framing instead of
/// waiting for a concatenated share. Salt routing threads one
/// [`SaltCursors`] across all blocks, which makes the hot-key round-robin a
/// function of scan order alone — any `batch_rows` reproduces the
/// whole-share routing bit for bit.
pub(crate) fn jen_shuffle_share(
    sys: &HybridSystem,
    query: &HybridQuery,
    st: &mut JenTask,
    w: usize,
    l_blocks: Vec<Batch>,
    l_schema: &Schema,
    salt: Option<&SaltRouter>,
) -> Result<()> {
    let num_jen = sys.config.jen_workers;
    let span = sys
        .tracer
        .start(sys.jen_workers[w].span_label(), Stage::ShuffleSend);
    let mut sent_rows = 0u64;
    let mut sent_bytes = 0u64;
    let mut cursors = SaltCursors::new();
    let mut bufs: Vec<ShuffleBuffer> = (0..num_jen)
        .map(|_| ShuffleBuffer::new(l_schema.clone(), sys.config.batch_rows))
        .collect();
    for block in &l_blocks {
        if block.is_empty() {
            continue;
        }
        sent_rows += block.num_rows() as u64;
        sent_bytes += block.serialized_bytes() as u64;
        let sels = match salt {
            Some(r) => r.partition_build_sel(block, query.hdfs_key, &mut cursors)?,
            None => partition_sel(block, query.hdfs_key, num_jen, agreed_shuffle_partition)?,
        };
        for (dst_idx, sel) in sels.iter().enumerate() {
            if sel.is_empty() {
                continue;
            }
            bufs[dst_idx].append(block, sel)?;
            if dst_idx != w {
                let dst = Endpoint::Jen(JenWorkerId(dst_idx));
                for batch in bufs[dst_idx].take_full()? {
                    st.mailbox.send(
                        dst,
                        Message::Data {
                            stream: StreamTag::HdfsShuffle,
                            batch,
                        },
                    )?;
                }
            }
        }
    }
    let mut mine = Batch::empty(l_schema.clone());
    for (dst_idx, buf) in bufs.into_iter().enumerate() {
        let tail = buf.finish();
        if dst_idx == w {
            mine = tail; // local partition: no network traffic
        } else {
            let dst = Endpoint::Jen(JenWorkerId(dst_idx));
            st.mailbox.send_data(dst, StreamTag::HdfsShuffle, &tail)?;
            st.mailbox.send_eos(dst, StreamTag::HdfsShuffle)?;
        }
    }
    span.done(sent_bytes, sent_rows);
    st.local_part = Some(mine);
    Ok(())
}

/// JEN epilogue, first half (repartition/zigzag/semijoin): receive the
/// shuffled HDFS partitions and build the local hash joiner over them plus
/// the local partition. In-memory by default, hybrid-hash with dynamic
/// partition eviction when the engine has a build-side memory budget (a
/// row limit or a byte share of the system's buffer pool).
pub(crate) fn jen_recv_build(
    sys: &HybridSystem,
    query: &HybridQuery,
    driver: &Driver,
    st: &mut JenTask,
    w: usize,
    l_schema: &Schema,
) -> Result<()> {
    let num_jen = sys.config.jen_workers;
    let label = sys.jen_workers[w].span_label();
    let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
    let shuffled = st
        .mailbox
        .take_stream(StreamTag::HdfsShuffle, num_jen - 1)?;
    let recv_rows: u64 = shuffled.batches.iter().map(|b| b.num_rows() as u64).sum();
    recv_span.done(0, recv_rows);
    let local = st
        .local_part
        .take()
        .unwrap_or_else(|| Batch::empty(l_schema.clone()));
    let built_rows = local.num_rows() as u64 + recv_rows;
    // Per-worker shuffle balance: local + received build rows. Independent
    // of schedule, so snapshots stay identical across thread counts.
    sys.metrics
        .add(&format!("net.shuffle.rows.jen-{w}"), built_rows);
    let _permit = driver.compute_permit();
    let build_span = sys.tracer.start(label, Stage::HashBuild);
    let mut joiner = LocalJoiner::new(
        l_schema.clone(),
        query.hdfs_key,
        sys.config.jen_memory_limit_rows,
        sys.query_budget
            .as_ref()
            .map(|q| q.worker_share(sys.config.jen_workers)),
        sys.metrics.clone(),
    )?;
    joiner.build(local)?;
    for b in shuffled.batches {
        joiner.build(b)?;
    }
    build_span.done(0, built_rows);
    st.joiner = Some(joiner);
    Ok(())
}

/// JEN epilogue, second half: receive the DB tuples, probe the joiner built
/// earlier, apply the post-join predicate, and aggregate partially. The
/// joined layout is L' ++ T', so the remapped query expressions apply.
pub(crate) fn jen_probe_aggregate(
    sys: &HybridSystem,
    query: &HybridQuery,
    driver: &Driver,
    st: &mut JenTask,
    w: usize,
    t_schema: &Schema,
) -> Result<()> {
    let num_db = sys.config.db_workers;
    let label = sys.jen_workers[w].span_label();
    let db_data = st.mailbox.take_stream(StreamTag::DbData, num_db)?;
    let joiner = st
        .joiner
        .take()
        .ok_or_else(|| HybridError::exec("probe step reached before a joiner was built"))?;
    let probe_rows: u64 = db_data.batches.iter().map(|b| b.num_rows() as u64).sum();
    let _permit = driver.compute_permit();
    let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
    let joined = joiner.probe_all(t_schema, db_data.batches, query.db_key)?;
    probe_span.done(0, probe_rows);
    let joined = match query.post_predicate_hdfs_layout() {
        Some(p) => {
            let mask = p.eval_predicate(&joined)?;
            joined.filter(&mask)?
        }
        None => joined,
    };
    let agg_span = sys.tracer.start(label, Stage::Aggregate);
    let mut agg = HashAggregator::new(query.aggs_hdfs_layout());
    let groups = query.group_expr_hdfs_layout().eval_i64(&joined)?;
    agg.update(&groups, &joined)?;
    st.partial = Some(agg.finish());
    agg_span.done(0, joined.num_rows() as u64);
    Ok(())
}

/// Append the HDFS-side epilogue shared by broadcast/repartition/zigzag/
/// semijoin/perf at sequence numbers `seq..seq+2`: partial aggregates
/// travel to the designated worker, which merges them and ships the final
/// result to DB worker 0 (Figures 2–4, final steps).
pub(crate) fn add_final_aggregation_steps<'env>(
    sys: &'env HybridSystem,
    query: &'env HybridQuery,
    jen: &mut TaskSet<'env, JenTask>,
    db: &mut TaskSet<'env, DbTask>,
    seq: u32,
) -> Result<()> {
    let designated = sys.coordinator.designated_worker()?;
    let num_jen = sys.config.jen_workers;
    jen.step(seq, move |w, st| {
        if w == designated.index() {
            return Ok(());
        }
        let partial = st
            .partial
            .take()
            .ok_or_else(|| HybridError::exec("missing partial aggregate"))?;
        let to = Endpoint::Jen(designated);
        st.mailbox.send_data(to, StreamTag::PartialAgg, &partial)?;
        st.mailbox.send_eos(to, StreamTag::PartialAgg)
    });
    jen.step(seq + 1, move |w, st| {
        if w != designated.index() {
            return Ok(());
        }
        let agg_span = sys
            .tracer
            .start(format!("jen-{}", designated.index()), Stage::Aggregate);
        let mut merger = HashAggregator::new(query.aggs.clone());
        if let Some(p) = st.partial.take() {
            merger.merge_partial(&p)?;
        }
        let received = st.mailbox.take_stream(StreamTag::PartialAgg, num_jen - 1)?;
        for p in &received.batches {
            merger.merge_partial(p)?;
        }
        let final_batch = merger.finish();
        agg_span.done(0, final_batch.num_rows() as u64);
        // ship to the database (a single DB worker returns it to the user)
        let db0 = Endpoint::Db(DbWorkerId(0));
        st.mailbox
            .send_data(db0, StreamTag::FinalResult, &final_batch)?;
        st.mailbox.send_eos(db0, StreamTag::FinalResult)
    });
    db.step(seq + 2, move |w, st| {
        if w != 0 {
            return Ok(());
        }
        let got = st.mailbox.take_stream(StreamTag::FinalResult, 1)?;
        // an all-EOS stream means an empty result; the aggregate schema is
        // a property of the query, so build it from an empty aggregator
        let schema = HashAggregator::new(query.aggs.clone())
            .finish()
            .schema()
            .clone();
        st.result = Some(if got.batches.is_empty() {
            Batch::empty(schema)
        } else {
            Batch::concat(schema, &got.batches)?
        });
        Ok(())
    });
    Ok(())
}

/// Pull the final result off DB worker 0's state after a driver run.
pub(crate) fn take_result(mut db_states: Vec<DbTask>) -> Result<Batch> {
    db_states
        .first_mut()
        .and_then(|st| st.result.take())
        .ok_or_else(|| HybridError::exec("no final result on DB worker 0"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use crate::system::SystemConfig;
    use hybrid_bloom::BloomParams;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::expr::Expr;
    use hybrid_common::hash::splitmix64;
    use hybrid_common::ops::AggSpec;
    use hybrid_common::schema::Schema;
    use hybrid_storage::FileFormat;

    fn t_schema() -> Schema {
        Schema::from_pairs(&[
            ("uniqKey", DataType::I64),
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("tdate", DataType::Date),
        ])
    }

    fn l_schema() -> Schema {
        Schema::from_pairs(&[
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("ldate", DataType::Date),
            ("grp", DataType::Utf8),
        ])
    }

    /// Deterministic pseudo-random tables: T has 400 rows over 50 keys,
    /// L has 1200 rows over 80 keys (keys 0..50 overlap T).
    fn t_data() -> Batch {
        let n = 400usize;
        Batch::new(
            t_schema(),
            vec![
                Column::I64((0..n as i64).collect()),
                Column::I32((0..n).map(|i| (splitmix64(i as u64) % 50) as i32).collect()),
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 7) % 100) as i32)
                        .collect(),
                ),
                Column::Date(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 9) % 30) as i32)
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    fn l_data() -> Batch {
        let n = 1200usize;
        Batch::new(
            l_schema(),
            vec![
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 100) % 80) as i32)
                        .collect(),
                ),
                Column::I32(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 101) % 100) as i32)
                        .collect(),
                ),
                Column::Date(
                    (0..n)
                        .map(|i| (splitmix64(i as u64 ^ 102) % 30) as i32)
                        .collect(),
                ),
                Column::Utf8(
                    (0..n)
                        .map(|i| format!("url_{}/p", splitmix64(i as u64 ^ 103) % 7))
                        .collect(),
                ),
            ],
        )
        .unwrap()
    }

    fn paper_query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(2, 49),
            db_proj: vec![1, 3], // joinKey, tdate
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 59),
            hdfs_proj: vec![0, 2, 3], // joinKey, ldate, grp
            hdfs_key: 0,
            post_predicate: Some(
                Expr::col(1)
                    .sub(Expr::col(3))
                    .ge(Expr::lit_i64(0))
                    .and(Expr::col(1).sub(Expr::col(3)).le(Expr::lit_i64(1))),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(4))),
            aggs: vec![AggSpec::Count],
            bloom: BloomParams::new(1 << 12, 2).unwrap(),
        }
    }

    fn system(format: FileFormat) -> HybridSystem {
        let mut cfg = SystemConfig::paper_shape(3, 4);
        cfg.rows_per_block = 100;
        let mut sys = HybridSystem::new(cfg).unwrap();
        sys.load_db_table("T", 0, t_data()).unwrap();
        sys.create_db_index("T", &[2, 1]).unwrap();
        sys.load_hdfs_table("L", format, l_schema(), &l_data())
            .unwrap();
        sys
    }

    /// Raw fabric sends, bypassing the mailbox pump (tests drive one
    /// endpoint at a time, so there is nobody to drain an inbox). Frames at
    /// the default batch size, like a default-configured mailbox.
    fn send_data(sys: &HybridSystem, from: Endpoint, to: Endpoint, stream: StreamTag, b: &Batch) {
        for chunk in b.chunks(crate::system::DEFAULT_BATCH_ROWS) {
            sys.fabric
                .send(
                    from,
                    to,
                    Message::Data {
                        stream,
                        batch: chunk,
                    },
                )
                .unwrap();
        }
    }

    fn send_eos(sys: &HybridSystem, from: Endpoint, to: Endpoint, stream: StreamTag) {
        sys.fabric.send(from, to, Message::Eos { stream }).unwrap();
    }

    #[test]
    fn all_algorithms_agree_with_reference() {
        let expected = run_reference(&t_data(), &l_data(), &paper_query()).unwrap();
        assert!(expected.num_rows() > 0, "test query must be non-trivial");
        for format in [FileFormat::Columnar, FileFormat::Text] {
            let mut sys = system(format);
            for alg in JoinAlgorithm::paper_variants()
                .into_iter()
                .chain([JoinAlgorithm::SemiJoin])
            {
                let out = run(&mut sys, &paper_query(), alg).unwrap();
                assert_eq!(
                    out.result, expected,
                    "algorithm {alg} diverged on {format} format"
                );
            }
        }
    }

    /// Cross-algorithm, cross-format invariants of one run:
    /// * every algorithm on every storage format returns the bit-identical
    ///   aggregated result;
    /// * the *set* of pipeline stages an algorithm records is a property of
    ///   the algorithm, not of the storage format — both formats must
    ///   produce identical Timeline stage-name sets;
    /// * every timeline is non-empty, scans on a JEN worker, and stays
    ///   within the tracer's clock (spans ordered, inside the makespan).
    #[test]
    fn cross_format_results_and_stage_sets_identical() {
        let expected = run_reference(&t_data(), &l_data(), &paper_query()).unwrap();
        assert!(expected.num_rows() > 0, "test query must be non-trivial");
        for alg in JoinAlgorithm::paper_variants()
            .into_iter()
            .chain([JoinAlgorithm::SemiJoin, JoinAlgorithm::PerfJoin])
        {
            let mut stage_sets = Vec::new();
            for format in [FileFormat::Columnar, FileFormat::Text] {
                let mut sys = system(format);
                let out = run(&mut sys, &paper_query(), alg).unwrap();
                assert_eq!(
                    out.result, expected,
                    "algorithm {alg} diverged on {format} format"
                );
                assert!(
                    !out.timeline.spans.is_empty(),
                    "{alg} on {format} recorded no spans"
                );
                assert!(
                    out.timeline
                        .spans
                        .iter()
                        .any(|s| s.worker.starts_with("jen-")
                            && s.stage == hybrid_common::trace::Stage::Scan),
                    "{alg} on {format} has no JEN scan span"
                );
                let makespan = out.timeline.makespan_us();
                for s in &out.timeline.spans {
                    assert!(s.t_start <= s.t_end, "{alg}: span ends before it starts");
                    assert!(s.t_end <= makespan, "{alg}: span outside makespan");
                }
                stage_sets.push(out.timeline.stage_names());
            }
            assert_eq!(
                stage_sets[0], stage_sets[1],
                "algorithm {alg}: stage set differs between storage formats"
            );
        }
    }

    #[test]
    fn bloom_variants_move_fewer_tuples() {
        let mut sys = system(FileFormat::Columnar);
        let q = paper_query();
        let plain = run(&mut sys, &q, JoinAlgorithm::Repartition { bloom: false }).unwrap();
        let bloomed = run(&mut sys, &q, JoinAlgorithm::Repartition { bloom: true }).unwrap();
        let zz = run(&mut sys, &q, JoinAlgorithm::Zigzag).unwrap();
        assert!(
            bloomed.summary.hdfs_tuples_shuffled <= plain.summary.hdfs_tuples_shuffled,
            "BF should not increase shuffle volume"
        );
        assert!(
            zz.summary.db_tuples_sent <= bloomed.summary.db_tuples_sent,
            "zigzag's BF_H should shrink the DB transfer"
        );
    }

    #[test]
    fn db_side_bloom_reduces_cross_traffic() {
        let mut sys = system(FileFormat::Columnar);
        let q = paper_query();
        let plain = run(&mut sys, &q, JoinAlgorithm::DbSide { bloom: false }).unwrap();
        let bloomed = run(&mut sys, &q, JoinAlgorithm::DbSide { bloom: true }).unwrap();
        assert!(bloomed.summary.hdfs_tuples_sent <= plain.summary.hdfs_tuples_sent);
        assert!(plain.summary.hdfs_tuples_sent > 0);
    }

    #[test]
    fn broadcast_sends_t_prime_to_every_worker() {
        let mut sys = system(FileFormat::Columnar);
        let q = paper_query();
        let out = run(&mut sys, &q, JoinAlgorithm::Broadcast).unwrap();
        // T' rows × 4 JEN workers
        let t_rows: u64 = sys
            .db
            .scan_filter_project(&q.db_table, &q.db_pred, &q.db_proj)
            .unwrap()
            .iter()
            .map(|b| b.num_rows() as u64)
            .sum();
        assert_eq!(out.summary.db_tuples_sent, t_rows * 4);
        assert_eq!(
            out.summary.hdfs_tuples_shuffled, 0,
            "broadcast never shuffles HDFS data"
        );
    }

    #[test]
    fn mailbox_demultiplexes_streams() {
        let sys = HybridSystem::new(SystemConfig::paper_shape(1, 2)).unwrap();
        let j0 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(0));
        let j1 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(1));
        let mk = |n: i32| {
            Batch::new(
                Schema::from_pairs(&[("x", DataType::I32)]),
                vec![Column::I32(vec![n])],
            )
            .unwrap()
        };
        // interleave two streams
        send_data(&sys, j1, j0, StreamTag::HdfsShuffle, &mk(1));
        send_data(&sys, j1, j0, StreamTag::DbData, &mk(2));
        send_data(&sys, j1, j0, StreamTag::HdfsShuffle, &mk(3));
        send_eos(&sys, j1, j0, StreamTag::HdfsShuffle);
        send_eos(&sys, j1, j0, StreamTag::DbData);
        let mut mb = Mailbox::new(&sys, j0).unwrap();
        let shuffle = mb.take_stream(StreamTag::HdfsShuffle, 1).unwrap();
        assert_eq!(shuffle.batches.len(), 2);
        let db = mb.take_stream(StreamTag::DbData, 1).unwrap();
        assert_eq!(db.batches.len(), 1);
        assert_eq!(db.batches[0].column(0).unwrap().as_i32().unwrap(), &[2]);
    }

    /// Satellite coverage for chaos retransmissions: for *every* logical
    /// stream, a duplicated data/bloom delivery and a duplicated EOS must
    /// both be discarded by the receiving mailbox. A surviving duplicate
    /// EOS is the dangerous case — it would inflate `eos_seen` and let a
    /// receiver stop before its peers' real data arrived.
    #[test]
    fn mailbox_dedups_duplicate_deliveries_on_every_stream() {
        let all_tags = [
            StreamTag::HdfsShuffle,
            StreamTag::DbData,
            StreamTag::HdfsData,
            StreamTag::DbBloom,
            StreamTag::HdfsBloom,
            StreamTag::PartialAgg,
            StreamTag::FinalResult,
            StreamTag::DbKeySet,
            StreamTag::PerfKeys,
            StreamTag::PerfBitmap,
            StreamTag::DimData0,
            StreamTag::DimData1,
            StreamTag::DimData2,
            StreamTag::CascadeShuffle0,
            StreamTag::CascadeShuffle1,
            StreamTag::CascadeShuffle2,
        ];
        for tag in all_tags {
            let mut cfg = SystemConfig::paper_shape(1, 2);
            cfg.fault_spec = Some(hybrid_net::FaultSpec::quiet(7).with_dups(1.0));
            let sys = HybridSystem::new(cfg).unwrap();
            let j0 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(0));
            let j1 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(1));
            let payload_is_bloom = matches!(
                tag,
                StreamTag::DbBloom | StreamTag::HdfsBloom | StreamTag::PerfBitmap
            );
            if payload_is_bloom {
                sys.fabric
                    .send(
                        j1,
                        j0,
                        Message::Bloom {
                            stream: tag,
                            bytes: vec![1, 2, 3],
                        },
                    )
                    .unwrap();
            } else {
                let b = Batch::new(
                    Schema::from_pairs(&[("x", DataType::I32)]),
                    vec![Column::I32(vec![42])],
                )
                .unwrap();
                sys.fabric
                    .send(
                        j1,
                        j0,
                        Message::Data {
                            stream: tag,
                            batch: b,
                        },
                    )
                    .unwrap();
            }
            sys.fabric
                .send(j1, j0, Message::Eos { stream: tag })
                .unwrap();

            let mut mb = Mailbox::new(&sys, j0).unwrap();
            let data = mb.take_stream(tag, 1).unwrap();
            if payload_is_bloom {
                assert_eq!(data.blooms.len(), 1, "{tag:?}: duplicate bloom survived");
            } else {
                assert_eq!(data.batches.len(), 1, "{tag:?}: duplicate batch survived");
            }
            // `take_stream` returns at the first EOS; the EOS's
            // retransmission is still queued. Drain it through the same
            // absorption path and check it was binned, not counted.
            while let Ok(d) = mb.rx.try_recv() {
                mb.absorb_delivery(d);
            }
            assert_eq!(
                mb.eos_seen.get(&tag).copied().unwrap_or(0),
                1,
                "{tag:?}: duplicate EOS inflated the barrier count"
            );
            // Both the payload's retransmission and the EOS's were binned.
            assert_eq!(
                sys.metrics.get("net.chaos.deduped"),
                2,
                "{tag:?}: expected exactly two deduped deliveries"
            );
        }
    }

    #[test]
    fn mailbox_timeout_on_missing_eos() {
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.recv_timeout = std::time::Duration::from_millis(20);
        let sys = HybridSystem::new(cfg).unwrap();
        let j0 = Endpoint::Jen(hybrid_common::ids::JenWorkerId(0));
        let mut mb = Mailbox::new(&sys, j0).unwrap();
        let err = mb.take_stream(StreamTag::DbData, 1).unwrap_err();
        assert!(matches!(err, HybridError::Net(_)));
    }

    #[test]
    fn algorithm_names_are_unique() {
        let mut names: Vec<&str> = JoinAlgorithm::paper_variants()
            .into_iter()
            .chain([JoinAlgorithm::SemiJoin])
            .map(|a| a.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn single_worker_clusters_work() {
        // degenerate 1×1 deployment exercises the "no peers" paths
        let mut cfg = SystemConfig::paper_shape(1, 1);
        cfg.rows_per_block = 64;
        let mut sys = HybridSystem::new(cfg).unwrap();
        sys.load_db_table("T", 0, t_data()).unwrap();
        sys.load_hdfs_table("L", FileFormat::Columnar, l_schema(), &l_data())
            .unwrap();
        let expected = run_reference(&t_data(), &l_data(), &paper_query()).unwrap();
        for alg in JoinAlgorithm::paper_variants() {
            let out = run(&mut sys, &paper_query(), alg).unwrap();
            assert_eq!(out.result, expected, "algorithm {alg} on 1x1");
        }
    }
}
