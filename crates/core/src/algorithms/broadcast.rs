//! HDFS-side broadcast join — paper §3.2, Figure 2.
//!
//! Every DB worker broadcasts its filtered partition `T'_w` to every JEN
//! worker, so each JEN worker holds the complete `T'` and joins purely
//! locally against its share of the HDFS scan — no HDFS data is shuffled at
//! all. Group-by and aggregation are pushed down: only the small final
//! aggregate crosses back to the database.
//!
//! The paper finds this wins only when `T'` is very small (σT ≲ 0.001);
//! the Fig. 10 harness reproduces that crossover.

use crate::algorithms::{
    add_final_aggregation_steps, db_scan_step, db_tasks, jen_tasks, t_prime_schema, take_result,
    Driver, TaskSet,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::ops::{HashAggregator, HashJoiner};
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::ScanSpec;
use hybrid_net::StreamTag;

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_db = sys.config.db_workers;

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: None,
    };
    let t_schema = &t_prime_schema(sys, query)?;

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    // Step 1: local predicates + projection on every DB worker.
    db.step(10, move |w, st| {
        st.part = Some(db_scan_step(sys, query, driver, w)?);
        Ok(())
    });

    // Step 2: every DB worker broadcasts its filtered partition to every
    // JEN worker (the paper's chosen "first transfer pattern", §4.3).
    db.step(20, move |w, st| {
        let part = st.part.take().expect("T' scanned in step 10");
        let jen_eps = sys.fabric.jen_endpoints();
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        for &dst in &jen_eps {
            st.mailbox.send_data(dst, StreamTag::DbData, &part)?;
            st.mailbox.send_eos(dst, StreamTag::DbData)?;
        }
        span.done(
            part.serialized_bytes() as u64 * jen_eps.len() as u64,
            part.num_rows() as u64 * jen_eps.len() as u64,
        );
        Ok(())
    });

    // Step 3: each JEN worker assembles T', scans its share of L, joins
    // locally, and computes a partial aggregate.
    jen.step(30, move |w, st| {
        let worker = &sys.jen_workers[w];
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let got = st.mailbox.take_stream(StreamTag::DbData, num_db)?;
        let recv_rows: u64 = got.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);

        let _permit = driver.compute_permit();
        // Build the hash table on the (small) broadcast T' — output layout
        // is the canonical T' ++ L', so the query expressions apply as-is.
        let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
        let mut joiner = HashJoiner::new(t_schema.clone(), query.db_key);
        for b in got.batches {
            joiner.build(b)?;
        }
        build_span.done(0, recv_rows);
        let (l_share, _) =
            scan_blocks_pipelined(worker, &plan.table, &plan.blocks[w], scan_spec, None)?;
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe(&l_share, query.hdfs_key)?;
        probe_span.done(0, l_share.num_rows() as u64);
        let joined = match &query.post_predicate {
            Some(p) => {
                let mask = p.eval_predicate(&joined)?;
                joined.filter(&mask)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let groups = query.group_expr.eval_i64(&joined)?;
        let mut agg = HashAggregator::new(query.aggs.clone());
        agg.update(&groups, &joined)?;
        st.partial = Some(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
        Ok(())
    });

    // Steps 4–5: final aggregation at the designated worker, result to DB.
    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 40)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}
