//! HDFS-side broadcast join — paper §3.2, Figure 2.
//!
//! Every DB worker broadcasts its filtered partition `T'_w` to every JEN
//! worker, so each JEN worker holds the complete `T'` and joins purely
//! locally against its share of the HDFS scan — no HDFS data is shuffled at
//! all. Group-by and aggregation are pushed down: only the small final
//! aggregate crosses back to the database.
//!
//! The paper finds this wins only when `T'` is very small (σT ≲ 0.001);
//! the Fig. 10 harness reproduces that crossover.

use crate::algorithms::{
    db_apply_local, hdfs_side_final_aggregation, send_data, send_eos, Mailbox,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::Batch;
use hybrid_common::error::Result;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::ops::{HashAggregator, HashJoiner};
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, StreamTag};

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let num_db = sys.config.db_workers;

    // Step 1: local predicates + projection on every DB worker.
    let t_prime = db_apply_local(sys, query)?;

    // Step 2: every DB worker broadcasts its filtered partition to every
    // JEN worker (the paper's chosen "first transfer pattern", §4.3).
    let jen_eps = sys.fabric.jen_endpoints();
    for (w, part) in t_prime.iter().enumerate() {
        let src = Endpoint::Db(DbWorkerId(w));
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        for &dst in &jen_eps {
            send_data(sys, src, dst, StreamTag::DbData, part)?;
            send_eos(sys, src, dst, StreamTag::DbData)?;
        }
        span.done(
            part.serialized_bytes() as u64 * jen_eps.len() as u64,
            part.num_rows() as u64 * jen_eps.len() as u64,
        );
    }

    // Step 3: each JEN worker assembles T', scans its share of L, joins
    // locally, and computes a partial aggregate.
    let plan = sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: None,
    };
    let t_schema = t_prime[0].schema().clone();
    let mut partials: Vec<Batch> = Vec::with_capacity(sys.config.jen_workers);
    for worker in &sys.jen_workers {
        let me = Endpoint::Jen(worker.id());
        let label = worker.span_label();
        let mut mb = Mailbox::new(sys, me)?;
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let got = mb.take_stream(StreamTag::DbData, num_db)?;
        let recv_rows: u64 = got.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);

        // Build the hash table on the (small) broadcast T' — output layout
        // is the canonical T' ++ L', so the query expressions apply as-is.
        let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
        let mut joiner = HashJoiner::new(t_schema.clone(), query.db_key);
        for b in got.batches {
            joiner.build(b)?;
        }
        build_span.done(0, recv_rows);
        let (l_share, _) = scan_blocks_pipelined(
            worker,
            &plan.table,
            &plan.blocks[worker.id().index()],
            &scan_spec,
            None,
        )?;
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe(&l_share, query.hdfs_key)?;
        probe_span.done(0, l_share.num_rows() as u64);
        let joined = match &query.post_predicate {
            Some(p) => {
                let mask = p.eval_predicate(&joined)?;
                joined.filter(&mask)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let groups = query.group_expr.eval_i64(&joined)?;
        let mut agg = HashAggregator::new(query.aggs.clone());
        agg.update(&groups, &joined)?;
        partials.push(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
    }

    // Steps 4–5: final aggregation at the designated worker, result to DB.
    hdfs_side_final_aggregation(sys, query, partials)
}
