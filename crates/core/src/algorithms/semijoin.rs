//! Semi-join baseline: ship the exact distinct join-key set instead of a
//! Bloom filter.
//!
//! The classic pre-Bloom technique (§6 cites Mackert & Lohman's comparison
//! of Bloom join vs semijoin): the database computes the *exact* set of
//! distinct `T'` join keys and ships it to the HDFS side, which filters `L`
//! with zero false positives but pays for a much larger transfer when the
//! key set is big. Everything after the key-set exchange mirrors the
//! repartition join. The ablation bench `bloom_vs_semijoin` quantifies the
//! trade.

use crate::algorithms::{
    db_apply_local, hdfs_side_final_aggregation, send_data, send_eos, Mailbox,
};
use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::Result;
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ids::{DbWorkerId, JenWorkerId};
use hybrid_common::ops::{partition_by_key, HashAggregator};
use hybrid_common::schema::Schema;
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_pipelined;
use hybrid_jen::LocalJoiner;
use hybrid_jen::ScanSpec;
use hybrid_net::{Endpoint, StreamTag};
use std::collections::HashSet;

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let num_db = sys.config.db_workers;
    let num_jen = sys.config.jen_workers;

    // Step 1: T' per DB worker; collect the exact distinct key set.
    let t_prime = db_apply_local(sys, query)?;
    let mut distinct: HashSet<i64> = HashSet::new();
    for part in &t_prime {
        let keys = part.column(query.db_key)?;
        for row in 0..part.num_rows() {
            distinct.insert(keys.key_at(row)?);
        }
    }
    let mut key_list: Vec<i64> = distinct.iter().copied().collect();
    key_list.sort_unstable();
    let key_schema = Schema::from_pairs(&[("joinKey", DataType::I64)]);
    let key_batch = Batch::new(key_schema, vec![Column::I64(key_list)])?;

    // Step 2: ship the exact key set to every JEN worker (this is what the
    // Bloom filter replaces — compare wire bytes in the ablation bench).
    let db0 = Endpoint::Db(DbWorkerId(0));
    for jen in sys.fabric.jen_endpoints() {
        send_data(sys, db0, jen, StreamTag::DbKeySet, &key_batch)?;
        send_eos(sys, db0, jen, StreamTag::DbKeySet)?;
    }

    // Step 3: DB workers route T' with the agreed hash (as in repartition).
    for (w, part) in t_prime.iter().enumerate() {
        let src = Endpoint::Db(DbWorkerId(w));
        let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
        let routed = partition_by_key(part, query.db_key, num_jen, agreed_shuffle_partition)?;
        for (jen_idx, piece) in routed.into_iter().enumerate() {
            let dst = Endpoint::Jen(JenWorkerId(jen_idx));
            send_data(sys, src, dst, StreamTag::DbData, &piece)?;
            send_eos(sys, src, dst, StreamTag::DbData)?;
        }
        span.done(part.serialized_bytes() as u64, part.num_rows() as u64);
    }

    // Step 4: JEN workers scan, filter by the exact key set, and shuffle.
    let plan = sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: None,
    };
    let l_schema = plan.table.schema.project(&query.hdfs_proj)?;
    let mut mailboxes: Vec<Mailbox> = sys
        .jen_workers
        .iter()
        .map(|w| Mailbox::new(sys, Endpoint::Jen(w.id())))
        .collect::<Result<_>>()?;
    let mut local_parts: Vec<Batch> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let me = Endpoint::Jen(worker.id());
        let got = mailboxes[w].take_stream(StreamTag::DbKeySet, 1)?;
        let mut keys: HashSet<i64> = HashSet::new();
        for b in &got.batches {
            let col = b.column(0)?;
            for row in 0..b.num_rows() {
                keys.insert(col.key_at(row)?);
            }
        }
        let (l_share, _) =
            scan_blocks_pipelined(worker, &plan.table, &plan.blocks[w], &scan_spec, None)?;
        // exact filtering — zero false positives
        let key_col = l_share.column(query.hdfs_key)?;
        let mask: Vec<bool> = (0..l_share.num_rows())
            .map(|row| key_col.key_at(row).map(|k| keys.contains(&k)))
            .collect::<Result<_>>()?;
        let l_share = l_share.filter(&mask)?;
        sys.metrics
            .add("jen.semijoin.rows_after_keyset", l_share.num_rows() as u64);

        let span = sys.tracer.start(worker.span_label(), Stage::ShuffleSend);
        let sent_rows = l_share.num_rows() as u64;
        let sent_bytes = l_share.serialized_bytes() as u64;
        let routed = partition_by_key(&l_share, query.hdfs_key, num_jen, agreed_shuffle_partition)?;
        let mut mine = Batch::empty(l_schema.clone());
        for (dst_idx, piece) in routed.into_iter().enumerate() {
            if dst_idx == w {
                mine = piece;
            } else {
                let dst = Endpoint::Jen(JenWorkerId(dst_idx));
                send_data(sys, me, dst, StreamTag::HdfsShuffle, &piece)?;
                send_eos(sys, me, dst, StreamTag::HdfsShuffle)?;
            }
        }
        span.done(sent_bytes, sent_rows);
        local_parts.push(mine);
    }

    // Step 5: local joins exactly as in the repartition join.
    let post_pred = query.post_predicate_hdfs_layout();
    let group_expr = query.group_expr_hdfs_layout();
    let hdfs_aggs = query.aggs_hdfs_layout();
    let mut partials: Vec<Batch> = Vec::with_capacity(num_jen);
    for worker in &sys.jen_workers {
        let w = worker.id().index();
        let label = worker.span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let shuffled = mailboxes[w].take_stream(StreamTag::HdfsShuffle, num_jen - 1)?;
        let recv_rows: u64 = shuffled.batches.iter().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, recv_rows);
        // the local join: in-memory by default, grace-hash with spilling
        // when the engine is configured with a build-side memory budget
        let mut joiner = LocalJoiner::new(
            l_schema.clone(),
            query.hdfs_key,
            sys.config.jen_memory_limit_rows,
            sys.metrics.clone(),
        )?;
        let built_rows = local_parts[w].num_rows() as u64 + recv_rows;
        let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
        joiner.build(std::mem::replace(
            &mut local_parts[w],
            Batch::empty(l_schema.clone()),
        ))?;
        for b in shuffled.batches {
            joiner.build(b)?;
        }
        build_span.done(0, built_rows);
        let db_data = mailboxes[w].take_stream(StreamTag::DbData, num_db)?;
        let t_schema = t_prime[0].schema().clone();
        let probe_rows: u64 = db_data.batches.iter().map(|b| b.num_rows() as u64).sum();
        let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
        let joined = joiner.probe_all(&t_schema, db_data.batches, query.db_key)?;
        probe_span.done(0, probe_rows);
        let joined = match &post_pred {
            Some(p) => {
                let mask = p.eval_predicate(&joined)?;
                joined.filter(&mask)?
            }
            None => joined,
        };
        let agg_span = sys.tracer.start(label, Stage::Aggregate);
        let mut agg = HashAggregator::new(hdfs_aggs.clone());
        let groups = group_expr.eval_i64(&joined)?;
        agg.update(&groups, &joined)?;
        partials.push(agg.finish());
        agg_span.done(0, joined.num_rows() as u64);
    }

    hdfs_side_final_aggregation(sys, query, partials)
}
