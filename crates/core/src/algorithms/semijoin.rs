//! Semi-join baseline: ship the exact distinct join-key set instead of a
//! Bloom filter.
//!
//! The classic pre-Bloom technique (§6 cites Mackert & Lohman's comparison
//! of Bloom join vs semijoin): the database computes the *exact* set of
//! distinct `T'` join keys and ships it to the HDFS side, which filters `L`
//! with zero false positives but pays for a much larger transfer when the
//! key set is big. Everything after the key-set exchange mirrors the
//! repartition join. The ablation bench `bloom_vs_semijoin` quantifies the
//! trade.
//!
//! Under the parallel driver each DB worker collects its own distinct keys;
//! worker 0 gathers them (an intra-DB transfer), unions, and broadcasts the
//! same global sorted key set the sequential version shipped.

use crate::algorithms::{
    add_final_aggregation_steps, db_route_to_jen, db_scan_step, db_tasks, jen_probe_aggregate,
    jen_recv_build, jen_shuffle_share, jen_tasks, t_prime_schema, take_result, Driver, TaskSet,
};
use crate::query::HybridQuery;
use crate::skew::SaltRouter;
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, Column};
use hybrid_common::datum::DataType;
use hybrid_common::error::Result;
use hybrid_common::schema::Schema;
use hybrid_jen::pipeline::scan_blocks_batched;
use hybrid_jen::ScanSpec;
use hybrid_net::StreamTag;
use std::collections::HashSet;

/// Sorted distinct join keys of `batch[key_col]` as a single-column batch.
fn distinct_key_batch(schema: &Schema, batches: &[&Batch], key_col: usize) -> Result<Batch> {
    let mut distinct: HashSet<i64> = HashSet::new();
    for b in batches {
        distinct.extend(b.column(key_col)?.keys_i64()?.iter().copied());
    }
    let mut key_list: Vec<i64> = distinct.into_iter().collect();
    key_list.sort_unstable();
    Batch::new(schema.clone(), vec![Column::I64(key_list)])
}

pub(crate) fn execute(sys: &mut HybridSystem, query: &HybridQuery) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_db = sys.config.db_workers;

    let plan = &sys.coordinator.plan_scan(&query.hdfs_table)?;
    let scan_spec = &ScanSpec {
        pred: query.hdfs_pred.clone(),
        proj: query.hdfs_proj.clone(),
        bloom_key: None,
    };
    let l_schema = &plan.table.schema.project(&query.hdfs_proj)?;
    let t_schema = &t_prime_schema(sys, query)?;
    let key_schema = &Schema::from_pairs(&[("joinKey", DataType::I64)]);
    // Hot-key routing for the post-keyset L' shuffle and the T' shipment.
    let salt = &SaltRouter::detect(sys, query)?;

    let mut db = TaskSet::new("db", db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", jen_tasks(sys, driver)?);

    // Step 1: T' per DB worker; each worker's exact distinct key set.
    db.step(10, move |w, st| {
        let part = db_scan_step(sys, query, driver, w)?;
        st.keys = Some(distinct_key_batch(key_schema, &[&part], query.db_key)?);
        st.part = Some(part);
        Ok(())
    });

    // Step 2a: gather the local key sets at DB worker 0 (intra-DB traffic;
    // the cross-fabric key-set transfer below is what the ablation meters).
    db.step(12, move |w, st| {
        if w == 0 {
            return Ok(());
        }
        let keys = st.keys.take().expect("keys collected in step 10");
        let db0 = hybrid_net::Endpoint::Db(hybrid_common::ids::DbWorkerId(0));
        st.mailbox.send_data(db0, StreamTag::DbKeySet, &keys)?;
        st.mailbox.send_eos(db0, StreamTag::DbKeySet)
    });

    // Step 2b: worker 0 unions the key sets and ships the global sorted
    // key set to every JEN worker (this is what the Bloom filter replaces
    // — compare wire bytes in the ablation bench).
    db.step(14, move |w, st| {
        if w != 0 {
            return Ok(());
        }
        let own = st.keys.take().expect("keys collected in step 10");
        let got = st.mailbox.take_stream(StreamTag::DbKeySet, num_db - 1)?;
        let mut all: Vec<&Batch> = vec![&own];
        all.extend(got.batches.iter());
        let key_batch = distinct_key_batch(key_schema, &all, 0)?;
        for jen_ep in sys.fabric.jen_endpoints() {
            st.mailbox
                .send_data(jen_ep, StreamTag::DbKeySet, &key_batch)?;
            st.mailbox.send_eos(jen_ep, StreamTag::DbKeySet)?;
        }
        Ok(())
    });

    // Step 3: DB workers route T' with the agreed hash (as in repartition).
    db.step(16, move |w, st| {
        let part = st.part.take().expect("T' scanned in step 10");
        db_route_to_jen(sys, query, st, w, &part, salt.as_ref())
    });

    // Step 4: JEN workers scan, filter by the exact key set, and shuffle,
    // block batch by block batch.
    jen.step(20, move |w, st| {
        let got = st.mailbox.take_stream(StreamTag::DbKeySet, 1)?;
        let mut keys: HashSet<i64> = HashSet::new();
        for b in &got.batches {
            keys.extend(b.column(0)?.keys_i64()?.iter().copied());
        }
        let worker = &sys.jen_workers[w];
        let l_blocks = {
            let _permit = driver.compute_permit();
            let (blocks, _) =
                scan_blocks_batched(worker, &plan.table, &plan.blocks[w], scan_spec, None)?;
            // exact filtering — zero false positives — through the same
            // vectorized membership path the Bloom variants use
            blocks
                .iter()
                .map(|b| hybrid_bloom::filter_batch(b, query.hdfs_key, &keys).map(|(kept, _)| kept))
                .collect::<Result<Vec<Batch>>>()?
        };
        let rows_after: u64 = l_blocks.iter().map(|b| b.num_rows() as u64).sum();
        sys.metrics
            .add("jen.semijoin.rows_after_keyset", rows_after);
        jen_shuffle_share(sys, query, st, w, l_blocks, l_schema, salt.as_ref())
    });

    // Step 5: local joins exactly as in the repartition join — build and
    // probe as separate driver steps so injected kills can land at the
    // spill-write/spill-read boundary.
    jen.step(30, move |w, st| {
        jen_recv_build(sys, query, driver, st, w, l_schema)
    });
    jen.step(32, move |w, st| {
        jen_probe_aggregate(sys, query, driver, st, w, t_schema)
    });

    add_final_aggregation_steps(sys, query, &mut jen, &mut db, 40)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_result(db_states)
}
