//! Single-node reference evaluation of a hybrid query.
//!
//! Used by tests and examples as ground truth: every distributed algorithm
//! must produce exactly this batch. The implementation is deliberately
//! simple — filter, hash join, filter, aggregate, all on one thread — and
//! shares only the lowest-level operators with the engines.

use crate::multiway::StarQuery;
use crate::query::HybridQuery;
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::hash::{hash_bytes, splitmix64};
use hybrid_common::ops::{HashAggregator, HashJoiner};
use std::collections::HashMap;

/// Evaluate `query` against the full `T` and `L` tables directly.
pub fn run_reference(t: &Batch, l: &Batch, query: &HybridQuery) -> Result<Batch> {
    query.validate()?;
    // local predicates + projection
    let t_mask = query.db_pred.eval_predicate(t)?;
    let t_prime = t.filter(&t_mask)?.project(&query.db_proj)?;
    let l_mask = query.hdfs_pred.eval_predicate(l)?;
    let l_prime = l.filter(&l_mask)?.project(&query.hdfs_proj)?;

    // equi-join in canonical orientation: build on T', probe with L'
    let mut joiner = HashJoiner::new(t_prime.schema().clone(), query.db_key);
    joiner.build(t_prime)?;
    let joined = joiner.probe(&l_prime, query.hdfs_key)?;

    // post-join predicate (canonical layout: T' ++ L')
    let joined = match &query.post_predicate {
        Some(p) => {
            let mask = p.eval_predicate(&joined)?;
            joined.filter(&mask)?
        }
        None => joined,
    };

    // group + aggregate
    let groups = query.group_expr.eval_i64(&joined)?;
    let mut agg = HashAggregator::new(query.aggs.clone());
    agg.update(&groups, &joined)?;
    Ok(agg.finish())
}

/// Evaluate a star query against the full fact and dimension tables
/// directly: a sequential n-way nested join in the **canonical** layout
/// `fact' ++ dim_0' ++ … ++ dim_{k-1}'` — ground truth for every
/// distributed multiway plan.
///
/// Deliberately independent of the engines' hash joiners: each dimension
/// is indexed with a plain `HashMap`, matches expand through explicit pair
/// selection vectors (fact-row order outer, dimension index order inner),
/// and columns stack by concatenation. The foreign-key columns stay at
/// their `fact_proj` positions throughout, because joined dimension
/// columns only ever append to the right.
pub fn run_star_reference(fact: &Batch, dims: &[Batch], star: &StarQuery) -> Result<Batch> {
    star.validate()?;
    if dims.len() != star.dims.len() {
        return Err(HybridError::config(format!(
            "{} dimension tables for {} dimension queries",
            dims.len(),
            star.dims.len()
        )));
    }
    let mask = star.fact_pred.eval_predicate(fact)?;
    let mut cur = fact.filter(&mask)?.project(&star.fact_proj)?;
    for (i, dq) in star.dims.iter().enumerate() {
        let mask = dq.pred.eval_predicate(&dims[i])?;
        let dim = dims[i].filter(&mask)?.project(&dq.proj)?;
        let mut index: HashMap<i64, Vec<u32>> = HashMap::new();
        for (row, &key) in dim.column(dq.key)?.keys_i64()?.iter().enumerate() {
            index.entry(key).or_default().push(row as u32);
        }
        let mut sel_cur: Vec<u32> = Vec::new();
        let mut sel_dim: Vec<u32> = Vec::new();
        for (row, &key) in cur
            .column(star.fact_keys[i])?
            .keys_i64()?
            .iter()
            .enumerate()
        {
            if let Some(matches) = index.get(&key) {
                for &m in matches {
                    sel_cur.push(row as u32);
                    sel_dim.push(m);
                }
            }
        }
        let left = cur.take(&sel_cur);
        let right = dim.take(&sel_dim);
        let schema = left.schema().join(right.schema());
        let columns = left
            .columns()
            .iter()
            .chain(right.columns())
            .cloned()
            .collect();
        cur = Batch::new(schema, columns)?;
    }
    let joined = match &star.post_predicate {
        Some(p) => {
            let mask = p.eval_predicate(&cur)?;
            cur.filter(&mask)?
        }
        None => cur,
    };
    let groups = star.group_expr.eval_i64(&joined)?;
    let mut agg = HashAggregator::new(star.aggs.clone());
    agg.update(&groups, &joined)?;
    Ok(agg.finish())
}

/// An order-sensitive content checksum of a batch: every column's values
/// fold into one `u64` (strings through [`hash_bytes`], integers through
/// [`splitmix64`] chained with their position). Two batches compare equal
/// iff schema-shape, row order, and every value match — the compact
/// fingerprint the differential grid and the bench baselines pin.
pub fn batch_checksum(batch: &Batch) -> u64 {
    use hybrid_common::batch::Column;
    let mut acc = splitmix64(batch.num_rows() as u64 ^ (batch.schema().len() as u64) << 32);
    for col in batch.columns() {
        match col {
            Column::I32(v) | Column::Date(v) => {
                for &x in v {
                    acc = splitmix64(acc ^ x as u64);
                }
            }
            Column::I64(v) => {
                for &x in v {
                    acc = splitmix64(acc ^ x as u64);
                }
            }
            Column::Utf8(v) => {
                for s in v {
                    acc = splitmix64(acc ^ hash_bytes(s.as_bytes(), 0x5EED));
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_bloom::BloomParams;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::expr::Expr;
    use hybrid_common::ops::AggSpec;
    use hybrid_common::schema::Schema;

    fn t() -> Batch {
        Batch::new(
            Schema::from_pairs(&[
                ("uniqKey", DataType::I64),
                ("joinKey", DataType::I32),
                ("corPred", DataType::I32),
                ("tdate", DataType::Date),
            ]),
            vec![
                Column::I64(vec![0, 1, 2, 3]),
                Column::I32(vec![10, 20, 30, 40]),
                Column::I32(vec![0, 0, 1, 0]),
                Column::Date(vec![5, 6, 7, 8]),
            ],
        )
        .unwrap()
    }

    fn l() -> Batch {
        Batch::new(
            Schema::from_pairs(&[
                ("joinKey", DataType::I32),
                ("corPred", DataType::I32),
                ("ldate", DataType::Date),
                ("grp", DataType::Utf8),
            ]),
            vec![
                Column::I32(vec![10, 10, 20, 30, 99]),
                Column::I32(vec![0, 0, 0, 0, 0]),
                Column::Date(vec![5, 4, 5, 7, 5]),
                Column::Utf8(vec![
                    "url_1/a".into(),
                    "url_1/b".into(),
                    "url_2/c".into(),
                    "url_1/d".into(),
                    "url_9/e".into(),
                ]),
            ],
        )
        .unwrap()
    }

    fn query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(2, 0), // corPred == 0: drops joinKey 30
            db_proj: vec![1, 3],         // joinKey, tdate
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 0), // keeps everything
            hdfs_proj: vec![0, 2, 3],      // joinKey, ldate, grp
            hdfs_key: 0,
            // 0 <= tdate - ldate <= 1 over canonical (t_k, tdate, l_k, ldate, grp)
            post_predicate: Some(
                Expr::col(1)
                    .sub(Expr::col(3))
                    .ge(Expr::lit_i64(0))
                    .and(Expr::col(1).sub(Expr::col(3)).le(Expr::lit_i64(1))),
            ),
            group_expr: Expr::ExtractGroup(Box::new(Expr::col(4))),
            aggs: vec![AggSpec::Count],
            bloom: BloomParams::new(1 << 10, 2).unwrap(),
        }
    }

    #[test]
    fn reference_computes_expected_counts() {
        // joins: L rows with key 10 (tdate 5): ldate 5 (diff 0 ✓), 4 (diff 1 ✓)
        //        L row key 20 (tdate 6): ldate 5 (diff 1 ✓)
        //        L row key 30: T row filtered out by corPred
        //        L row key 99: no T partner
        // groups: url_1 → 2 (ldate5 & ldate4), url_2 → 1
        let out = run_reference(&t(), &l(), &query()).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(0).unwrap().as_i64().unwrap(), &[1, 2]);
        assert_eq!(out.column(1).unwrap().as_i64().unwrap(), &[2, 1]);
    }

    #[test]
    fn no_post_predicate_counts_all_matches() {
        let mut q = query();
        q.post_predicate = None;
        let out = run_reference(&t(), &l(), &q).unwrap();
        // key 10 ×2 (url_1), key 20 ×1 (url_2), key 30 dropped by T pred
        assert_eq!(out.column(1).unwrap().as_i64().unwrap(), &[2, 1]);
    }

    #[test]
    fn empty_inputs_yield_empty_result() {
        let q = query();
        let empty_t = Batch::empty(t().schema().clone());
        let out = run_reference(&empty_t, &l(), &q).unwrap();
        assert_eq!(out.num_rows(), 0);
    }
}
