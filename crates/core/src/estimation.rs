//! Sampling-based query estimation.
//!
//! The advisor (§5.5 rules) needs `T'`/`L'` sizes and the join-key
//! selectivities *before* running the query. A real warehouse reads these
//! from catalog statistics; this module derives them the way a planner
//! without statistics would — by sampling:
//!
//! * **database side**: every worker evaluates the local predicate over a
//!   bounded prefix-stride sample of its partition (cheap; an index-only
//!   plan in the real system);
//! * **HDFS side**: a handful of blocks, spread across the file, are
//!   decoded and filtered;
//! * **join-key selectivities**: the overlap of the sampled surviving key
//!   sets. Sampling shrinks both sets, so the overlap fractions are noisy —
//!   good enough to steer the §5.5 decision rules, and clearly documented
//!   as estimates.
//!
//! [`run_auto`] chains it all: estimate → advise → execute.

use crate::adapt::run_adaptive;
use crate::advisor::{advise, DimEstimates, QueryEstimates, StarEstimates};
use crate::algorithms::JoinAlgorithm;
use crate::multiway::StarQuery;
use crate::query::HybridQuery;
use crate::stats::RunOutput;
use crate::system::HybridSystem;
use hybrid_common::error::Result;
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_storage::decode;
use std::collections::HashSet;

/// How many rows each DB worker samples from its partition.
const DB_SAMPLE_ROWS: usize = 1_000;

/// Sampling-derived statistics for one query.
#[derive(Debug, Clone, Copy)]
pub struct SampledStats {
    pub sigma_t: f64,
    pub sigma_l: f64,
    pub st: f64,
    pub sl: f64,
    /// Estimated `T'` rows across the cluster.
    pub t_prime_rows: f64,
    /// Estimated `L'` rows across the cluster.
    pub l_prime_rows: f64,
    /// Estimated average wire width of a projected `T'` row, bytes.
    pub t_row_bytes: f64,
    pub l_row_bytes: f64,
    /// Estimated shuffle imbalance of the surviving `L'` keys under the
    /// agreed hash: hottest JEN worker's share over the mean (1.0 =
    /// uniform). Derived from the same block sample as `sigma_l`, counting
    /// *rows* per target worker — duplicates matter, they are what a hot
    /// key is made of.
    pub shuffle_skew: f64,
}

impl SampledStats {
    /// Convert to the advisor's input. `mem_budget_per_worker` is the
    /// build-side budget a JEN worker will run under (see
    /// [`crate::system::HybridSystem::mem_budget_per_worker`]); `None` =
    /// unbounded.
    pub fn to_estimates(
        &self,
        query: &HybridQuery,
        num_jen_workers: usize,
        mem_budget_per_worker: Option<u64>,
    ) -> QueryEstimates {
        QueryEstimates {
            t_prime_bytes: (self.t_prime_rows * self.t_row_bytes) as u64,
            l_prime_bytes: (self.l_prime_rows * self.l_row_bytes) as u64,
            st: self.st,
            sl: self.sl,
            num_jen_workers,
            bloom_bytes: query.bloom.wire_bytes() as u64,
            shuffle_skew: self.shuffle_skew,
            mem_budget_per_worker,
        }
    }
}

/// Estimate the query's selectivities by sampling both tables.
///
/// `sample_blocks` bounds how many HDFS blocks are decoded (they are taken
/// at even strides through the file so clustered data does not bias the
/// estimate).
pub fn sample_stats(
    sys: &HybridSystem,
    query: &HybridQuery,
    sample_blocks: usize,
) -> Result<SampledStats> {
    query.validate()?;

    // --- database side ---
    let mut t_sampled = 0usize;
    let mut t_passed = 0usize;
    let mut t_bytes = 0usize;
    let mut t_total_rows = 0usize;
    let mut t_keys: HashSet<i64> = HashSet::new();
    for w in 0..sys.db.num_workers() {
        let partition = sys.db.worker(w).partition(&query.db_table)?;
        t_total_rows += partition.num_rows();
        let n = partition.num_rows().min(DB_SAMPLE_ROWS);
        if n == 0 {
            continue;
        }
        let stride = (partition.num_rows() / n).max(1);
        let rows: Vec<u32> = (0..n).map(|i| (i * stride) as u32).collect();
        let sample = partition.take(&rows);
        let mask = query.db_pred.eval_predicate(&sample)?;
        let survivors = sample.filter(&mask)?.project(&query.db_proj)?;
        t_sampled += n;
        t_passed += survivors.num_rows();
        t_bytes += survivors.serialized_bytes();
        let keys = survivors.column(query.db_key)?;
        for row in 0..survivors.num_rows() {
            t_keys.insert(keys.key_at(row)?);
        }
    }

    // --- HDFS side ---
    let meta = sys.coordinator.lookup_table(&query.hdfs_table)?;
    let blocks = sys.hdfs.read().file_blocks(&meta.path)?;
    let n_blocks = blocks.len();
    let picked = sample_blocks.clamp(1, n_blocks.max(1));
    let mut l_sampled = 0usize;
    let mut l_passed = 0usize;
    let mut l_bytes = 0usize;
    let mut l_keys: HashSet<i64> = HashSet::new();
    let num_jen = sys.config.jen_workers.max(1);
    let mut worker_loads = vec![0u64; num_jen];
    for i in 0..picked {
        let idx = i * n_blocks / picked;
        let block = &blocks[idx];
        let reader = sys.jen_workers[0].datanode();
        let bytes = sys
            .hdfs
            .read()
            .read_block_into(block.id, reader, &sys.metrics)?;
        let decoded = decode(meta.format, &meta.schema, &bytes, None)?;
        let mask = query.hdfs_pred.eval_predicate(&decoded.batch)?;
        let survivors = decoded.batch.filter(&mask)?.project(&query.hdfs_proj)?;
        l_sampled += decoded.batch.num_rows();
        l_passed += survivors.num_rows();
        l_bytes += survivors.serialized_bytes();
        let keys = survivors.column(query.hdfs_key)?;
        for row in 0..survivors.num_rows() {
            let key = keys.key_at(row)?;
            l_keys.insert(key);
            worker_loads[agreed_shuffle_partition(key, num_jen)] += 1;
        }
    }
    // total L rows ≈ rows per sampled block × block count
    let l_total_rows = if l_sampled == 0 {
        0.0
    } else {
        (l_sampled as f64 / picked as f64) * n_blocks as f64
    };

    let sigma_t = ratio(t_passed, t_sampled);
    let sigma_l = ratio(l_passed, l_sampled);
    let load_total: u64 = worker_loads.iter().sum();
    let shuffle_skew = if load_total == 0 {
        1.0
    } else {
        let max = *worker_loads.iter().max().expect("num_jen >= 1") as f64;
        max * num_jen as f64 / load_total as f64
    };
    let inter = t_keys.intersection(&l_keys).count() as f64;
    Ok(SampledStats {
        sigma_t,
        sigma_l,
        st: if t_keys.is_empty() {
            1.0
        } else {
            inter / t_keys.len() as f64
        },
        sl: if l_keys.is_empty() {
            1.0
        } else {
            inter / l_keys.len() as f64
        },
        t_prime_rows: sigma_t * t_total_rows as f64,
        l_prime_rows: sigma_l * l_total_rows,
        t_row_bytes: avg(t_bytes, t_passed),
        l_row_bytes: avg(l_bytes, l_passed),
        shuffle_skew,
    })
}

/// Estimate a star query's inputs for the multiway advisor.
///
/// Dimensions are counted **exactly** — each DB worker evaluates the full
/// filter + projection (dimension tables are small by definition, and a
/// real optimizer would read these numbers from catalog statistics) and
/// their selected key sets are retained. The fact side samples
/// `sample_blocks` strided HDFS blocks like [`sample_stats`]; each
/// dimension's `pass_fraction` is the fraction of sampled fact survivors
/// whose foreign key lands in that dimension's selected key set.
pub fn sample_star_stats(
    sys: &HybridSystem,
    star: &StarQuery,
    sample_blocks: usize,
) -> Result<StarEstimates> {
    star.validate()?;
    let k = star.dims.len();

    // --- dimensions: exact counts + selected key sets ---
    let mut dim_rows = vec![0u64; k];
    let mut dim_bytes = vec![0u64; k];
    let mut dim_keys: Vec<HashSet<i64>> = vec![HashSet::new(); k];
    for (i, dq) in star.dims.iter().enumerate() {
        for w in 0..sys.db.num_workers() {
            let part = sys
                .db
                .worker(w)
                .scan_filter_project(&dq.table, &dq.pred, &dq.proj)?;
            dim_rows[i] += part.num_rows() as u64;
            dim_bytes[i] += part.serialized_bytes() as u64;
            let keys = part.column(dq.key)?;
            for row in 0..part.num_rows() {
                dim_keys[i].insert(keys.key_at(row)?);
            }
        }
    }

    // --- fact: strided block sample ---
    let meta = sys.coordinator.lookup_table(&star.fact_table)?;
    let blocks = sys.hdfs.read().file_blocks(&meta.path)?;
    let n_blocks = blocks.len();
    let picked = sample_blocks.clamp(1, n_blocks.max(1));
    let mut l_sampled = 0usize;
    let mut l_passed = 0usize;
    let mut l_bytes = 0usize;
    let mut fk_hits = vec![0u64; k];
    for i in 0..picked {
        let idx = i * n_blocks / picked;
        let reader = sys.jen_workers[0].datanode();
        let bytes = sys
            .hdfs
            .read()
            .read_block_into(blocks[idx].id, reader, &sys.metrics)?;
        let decoded = decode(meta.format, &meta.schema, &bytes, None)?;
        let mask = star.fact_pred.eval_predicate(&decoded.batch)?;
        let survivors = decoded.batch.filter(&mask)?.project(&star.fact_proj)?;
        l_sampled += decoded.batch.num_rows();
        l_passed += survivors.num_rows();
        l_bytes += survivors.serialized_bytes();
        for (axis, hits) in fk_hits.iter_mut().enumerate() {
            let keys = survivors.column(star.fact_keys[axis])?;
            for row in 0..survivors.num_rows() {
                if dim_keys[axis].contains(&keys.key_at(row)?) {
                    *hits += 1;
                }
            }
        }
    }
    let l_total_rows = if l_sampled == 0 {
        0.0
    } else {
        (l_sampled as f64 / picked as f64) * n_blocks as f64
    };
    let sigma_l = ratio(l_passed, l_sampled);
    let fact_prime_rows = sigma_l * l_total_rows;
    let fact_prime_bytes = fact_prime_rows * avg(l_bytes, l_passed);

    Ok(StarEstimates {
        fact_prime_bytes: fact_prime_bytes as u64,
        fact_prime_rows: fact_prime_rows as u64,
        dims: (0..k)
            .map(|i| DimEstimates {
                dim_prime_bytes: dim_bytes[i],
                dim_prime_rows: dim_rows[i],
                pass_fraction: if l_passed == 0 {
                    1.0
                } else {
                    fk_hits[i] as f64 / l_passed as f64
                },
            })
            .collect(),
        num_jen_workers: sys.config.jen_workers,
    })
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn avg(bytes: usize, rows: usize) -> f64 {
    if rows == 0 {
        // conservative default width when nothing survived the sample
        16.0
    } else {
        bytes as f64 / rows as f64
    }
}

/// Estimate, let the advisor choose, and execute — the "just run my query"
/// entry point a downstream user wants. Returns the sampled statistics
/// alongside the choice and the run output, so callers can audit *why*
/// the advisor picked what it picked (and feed dashboards without
/// re-sampling). Execution goes through [`run_adaptive`]: on a system with
/// `replan_threshold` set, the same sampled estimates arm the mid-query
/// replan controller; with the threshold unset this is plain
/// [`crate::run`], byte for byte.
pub fn run_auto(
    sys: &mut HybridSystem,
    query: &HybridQuery,
) -> Result<(JoinAlgorithm, RunOutput, SampledStats)> {
    let stats = sample_stats(sys, query, 8)?;
    let est = stats.to_estimates(query, sys.config.jen_workers, sys.mem_budget_per_worker());
    let choice = advise(&est);
    let out = run_adaptive(sys, query, choice, &est)?;
    Ok((choice, out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    // The estimation tests that exercise generated workloads live in the
    // cross-crate integration suite (`tests/estimation.rs`); here we cover
    // the arithmetic edges.

    #[test]
    fn ratio_and_avg_guards() {
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
        assert_eq!(avg(0, 0), 16.0);
        assert_eq!(avg(64, 4), 16.0);
    }

    #[test]
    fn sampling_missing_table_errors() {
        let sys = HybridSystem::new(SystemConfig::paper_shape(1, 1)).unwrap();
        let query = crate::query::HybridQuery {
            db_table: "nope".into(),
            hdfs_table: "nope".into(),
            db_pred: hybrid_common::expr::Expr::col_le(0, 1),
            db_proj: vec![0],
            db_key: 0,
            hdfs_pred: hybrid_common::expr::Expr::col_le(0, 1),
            hdfs_proj: vec![0],
            hdfs_key: 0,
            post_predicate: None,
            group_expr: hybrid_common::expr::Expr::col(0),
            aggs: vec![hybrid_common::ops::AggSpec::Count],
            bloom: hybrid_bloom::BloomParams::new(64, 2).unwrap(),
        };
        assert!(sample_stats(&sys, &query, 4).is_err());
    }
}
