//! Skew-aware shuffle routing: heavy-hitter detection plus salted
//! partitioning.
//!
//! The repartition-family joins route every tuple of a join key to the one
//! JEN worker owning its hash partition. A heavy-hitter key therefore turns
//! that worker into the straggler that bounds the whole pipelined plan —
//! the load-balancing problem selective replication attacks (Metwally,
//! SIGMOD '22; Afrati et al.).
//!
//! The scheme here:
//!
//! 1. **Detect** — before execution, sample strided HDFS blocks under the
//!    query's local predicates and feed surviving join keys through a
//!    [`SpaceSaving`] sketch. A key is *hot* when its guaranteed count
//!    reaches a fair worker share of the sample.
//! 2. **Salt the build side** — rows of a hot key `k` are split
//!    round-robin across the `f = salt_buckets` workers
//!    `(home(k) + i) mod n`, `i < f`, where `home` is the agreed hash.
//! 3. **Replicate the probe side** — `T'` rows carrying `k` are sent to
//!    *all* `f` salt workers, so every `(t, l)` pair still meets exactly
//!    once; results are bit-identical to the unsalted plan.
//!
//! Cold keys keep the agreed hash route untouched. Every routing decision
//! is a pure function of (key, per-sender scan order), so parallel runs
//! stay deterministic and metric snapshots remain schedule-independent.

use crate::query::HybridQuery;
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, SelectionVector};
use hybrid_common::error::Result;
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::sketch::SpaceSaving;
use hybrid_storage::decode;
use std::collections::{HashMap, HashSet};

/// How many HDFS blocks the detector decodes (strided through the file).
/// Shared with the multiway detector so both samplers see the same slice
/// of the file.
pub(crate) const SALT_SAMPLE_BLOCKS: usize = 16;

/// Sketch width — far above the handful of keys that can matter.
pub(crate) const SKETCH_CAPACITY: usize = 64;

/// Noise floor: a key must have at least this many guaranteed sampled
/// occurrences before salting it, however small the sample.
pub(crate) const MIN_HOT_COUNT: u64 = 16;

/// Routing table for one query's salted shuffle.
#[derive(Debug, Clone)]
pub struct SaltRouter {
    num_jen: usize,
    /// Salt fan-out per hot key, clamped to the worker count.
    fanout: usize,
    hot: HashSet<i64>,
}

impl SaltRouter {
    /// Sample the HDFS side of `query` and build a router when
    /// `config.salt_buckets` is set and at least one heavy hitter clears
    /// the fair-share threshold. Returns `None` (zero overhead) otherwise.
    pub fn detect(sys: &HybridSystem, query: &HybridQuery) -> Result<Option<SaltRouter>> {
        let Some(f) = sys.config.salt_buckets else {
            return Ok(None);
        };
        let n = sys.config.jen_workers;
        if n < 2 {
            return Ok(None);
        }
        let meta = sys.coordinator.lookup_table(&query.hdfs_table)?;
        let blocks = sys.hdfs.read().file_blocks(&meta.path)?;
        let picked = SALT_SAMPLE_BLOCKS.clamp(1, blocks.len().max(1));
        let mut sketch = SpaceSaving::new(SKETCH_CAPACITY);
        for i in 0..picked {
            let idx = i * blocks.len() / picked;
            let reader = sys.jen_workers[0].datanode();
            let bytes = sys
                .hdfs
                .read()
                .read_block_into(blocks[idx].id, reader, &sys.metrics)?;
            let decoded = decode(meta.format, &meta.schema, &bytes, None)?;
            let mask = query.hdfs_pred.eval_predicate(&decoded.batch)?;
            let survivors = decoded.batch.filter(&mask)?.project(&query.hdfs_proj)?;
            for &key in survivors.column(query.hdfs_key)?.keys_i64()?.iter() {
                sketch.offer(key);
            }
        }
        let threshold = (sketch.total() / n as u64).max(MIN_HOT_COUNT);
        let hot: HashSet<i64> = sketch
            .heavy_hitters(threshold)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        sys.metrics.add("core.salt.sampled_rows", sketch.total());
        sys.metrics.add("core.salt.hot_keys", hot.len() as u64);
        if hot.is_empty() {
            return Ok(None);
        }
        Ok(Some(SaltRouter {
            num_jen: n,
            fanout: f.min(n),
            hot,
        }))
    }

    /// A router over an explicit hot-key set (tests, tooling).
    pub fn with_hot_keys(
        hot: impl IntoIterator<Item = i64>,
        num_jen: usize,
        f: usize,
    ) -> SaltRouter {
        SaltRouter {
            num_jen,
            fanout: f.clamp(1, num_jen),
            hot: hot.into_iter().collect(),
        }
    }

    pub fn is_hot(&self, key: i64) -> bool {
        self.hot.contains(&key)
    }

    pub fn num_hot(&self) -> usize {
        self.hot.len()
    }

    /// The salt workers of hot key `key`: `fanout` distinct workers
    /// starting at the key's agreed home partition.
    fn salt_workers(&self, key: i64) -> impl Iterator<Item = usize> + '_ {
        let home = agreed_shuffle_partition(key, self.num_jen);
        (0..self.fanout).map(move |i| (home + i) % self.num_jen)
    }

    /// Per-destination selection vectors for a build-side batch. Hot-key
    /// rows cycle round-robin over the key's salt workers through
    /// `cursors`, which persist across the batches of one sender's share:
    /// routing depends only on (key, per-sender scan order), never on how
    /// the share was framed into batches, so any `batch_rows` setting
    /// reproduces the whole-share routing bit for bit. Cold rows take the
    /// agreed hash.
    pub fn partition_build_sel(
        &self,
        batch: &Batch,
        key_col: usize,
        cursors: &mut SaltCursors,
    ) -> Result<Vec<SelectionVector>> {
        let keys = batch.column(key_col)?.keys_i64()?;
        let mut sel: Vec<Vec<u32>> = (0..self.num_jen).map(|_| Vec::new()).collect();
        for (row, &key) in keys.iter().enumerate() {
            let dest = if self.is_hot(key) {
                let c = cursors.next.entry(key).or_insert(0);
                let home = agreed_shuffle_partition(key, self.num_jen);
                let dest = (home + *c) % self.num_jen;
                *c = (*c + 1) % self.fanout;
                dest
            } else {
                agreed_shuffle_partition(key, self.num_jen)
            };
            sel[dest].push(row as u32);
        }
        Ok(sel.into_iter().map(SelectionVector::from_indexes).collect())
    }

    /// Split a build-side batch into one piece per JEN worker (one-shot
    /// form of [`SaltRouter::partition_build_sel`] with fresh cursors).
    pub fn partition_build(&self, batch: &Batch, key_col: usize) -> Result<Vec<Batch>> {
        let mut cursors = SaltCursors::new();
        let sel = self.partition_build_sel(batch, key_col, &mut cursors)?;
        Ok(sel.iter().map(|s| batch.take_sel(s)).collect())
    }

    /// Per-destination selection vectors for a probe-side batch. Hot-key
    /// rows appear in *every* salt worker's selection (each meets a
    /// disjoint slice of the split build side); cold rows take the agreed
    /// hash. Stateless, so per-batch application equals whole-share
    /// application.
    pub fn partition_probe_sel(
        &self,
        batch: &Batch,
        key_col: usize,
    ) -> Result<Vec<SelectionVector>> {
        let keys = batch.column(key_col)?.keys_i64()?;
        let mut sel: Vec<Vec<u32>> = (0..self.num_jen).map(|_| Vec::new()).collect();
        for (row, &key) in keys.iter().enumerate() {
            if self.is_hot(key) {
                for dest in self.salt_workers(key) {
                    sel[dest].push(row as u32);
                }
            } else {
                sel[agreed_shuffle_partition(key, self.num_jen)].push(row as u32);
            }
        }
        Ok(sel.into_iter().map(SelectionVector::from_indexes).collect())
    }

    /// Split a probe-side batch into one piece per JEN worker.
    pub fn partition_probe(&self, batch: &Batch, key_col: usize) -> Result<Vec<Batch>> {
        let sel = self.partition_probe_sel(batch, key_col)?;
        Ok(sel.iter().map(|s| batch.take_sel(s)).collect())
    }
}

/// Per-sender round-robin positions of each hot key's salted build route.
///
/// One instance lives for the duration of one sender's share and is
/// threaded through every [`SaltRouter::partition_build_sel`] call, making
/// the hot-key split a function of scan order alone — independent of batch
/// framing.
#[derive(Debug, Default)]
pub struct SaltCursors {
    next: HashMap<i64, usize>,
}

impl SaltCursors {
    pub fn new() -> SaltCursors {
        SaltCursors::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;

    fn batch(keys: &[i32]) -> Batch {
        Batch::new(
            Schema::from_pairs(&[("k", DataType::I32), ("v", DataType::I64)]),
            vec![
                Column::I32(keys.to_vec()),
                Column::I64((0..keys.len() as i64).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_splits_hot_probe_replicates_hot() {
        let n = 4;
        let r = SaltRouter::with_hot_keys([7], n, 4);
        let hot_rows = 40;
        let b = batch(&vec![7i32; hot_rows]);
        let built = r.partition_build(&b, 0).unwrap();
        // round-robin: every worker gets exactly hot_rows / n rows
        for piece in &built {
            assert_eq!(piece.num_rows(), hot_rows / n);
        }
        let probed = r.partition_probe(&b, 0).unwrap();
        for piece in &probed {
            assert_eq!(piece.num_rows(), hot_rows, "probe replicates to all");
        }
    }

    #[test]
    fn cold_keys_keep_the_agreed_route() {
        let n = 4;
        let r = SaltRouter::with_hot_keys([999], n, 4);
        let keys: Vec<i32> = (0..100).collect();
        let b = batch(&keys);
        let built = r.partition_build(&b, 0).unwrap();
        let probed = r.partition_probe(&b, 0).unwrap();
        let agreed =
            hybrid_common::ops::partition_by_key(&b, 0, n, agreed_shuffle_partition).unwrap();
        assert_eq!(built, agreed);
        assert_eq!(probed, agreed);
    }

    #[test]
    fn every_build_probe_pair_meets_exactly_once() {
        // For each (build row, probe row) of the same key, exactly one
        // worker holds both — the invariant that makes results identical.
        let n = 5;
        let r = SaltRouter::with_hot_keys([3, 11], n, 3);
        let build = batch(&[3, 3, 3, 3, 3, 11, 11, 11, 2, 2, 9]);
        let probe = batch(&[3, 3, 11, 2, 9, 9]);
        let built = r.partition_build(&build, 0).unwrap();
        let probed = r.partition_probe(&probe, 0).unwrap();
        for key in [3i32, 11, 2, 9] {
            let build_count: usize = built.iter().map(|p| count_key(p, key)).sum();
            assert_eq!(build_count, count_key(&build, key), "build rows conserved");
            for w in 0..n {
                let bw = count_key(&built[w], key);
                let pw = count_key(&probed[w], key);
                if bw > 0 {
                    assert_eq!(
                        pw,
                        count_key(&probe, key),
                        "worker {w} holds build rows of {key} but not all probe rows"
                    );
                }
            }
            // pairs meet exactly once: sum over workers of bw*pw equals
            // total build rows × total probe rows
            let met: usize = (0..n)
                .map(|w| count_key(&built[w], key) * count_key(&probed[w], key))
                .sum();
            assert_eq!(met, count_key(&build, key) * count_key(&probe, key));
        }
    }

    fn count_key(b: &Batch, key: i32) -> usize {
        b.column(0)
            .unwrap()
            .as_i32()
            .unwrap()
            .iter()
            .filter(|&&k| k == key)
            .count()
    }

    #[test]
    fn fanout_clamps_to_worker_count() {
        let r = SaltRouter::with_hot_keys([1], 2, 64);
        let b = batch(&[1, 1, 1, 1]);
        let built = r.partition_build(&b, 0).unwrap();
        assert_eq!(built.len(), 2);
        assert_eq!(built[0].num_rows() + built[1].num_rows(), 4);
        assert_eq!(built[0].num_rows(), 2);
    }

    #[test]
    fn batched_routing_matches_whole_share_routing() {
        // Route the share whole, then re-route it chunked at several batch
        // sizes with cursors persisting across chunks: the per-destination
        // row streams must be identical.
        let n = 4;
        let r = SaltRouter::with_hot_keys([5, 2], n, 3);
        let b = batch(&[5, 1, 5, 2, 5, 5, 2, 3, 5, 2, 2, 5, 7, 5]);
        let whole = r.partition_build(&b, 0).unwrap();
        for chunk_rows in [1usize, 3, 5, 100] {
            let mut cursors = SaltCursors::new();
            let mut pieces: Vec<Vec<Batch>> = (0..n).map(|_| Vec::new()).collect();
            for chunk in b.chunks(chunk_rows) {
                let sel = r.partition_build_sel(&chunk, 0, &mut cursors).unwrap();
                for (dest, s) in sel.iter().enumerate() {
                    pieces[dest].push(chunk.take_sel(s));
                }
            }
            for (dest, got) in pieces.into_iter().enumerate() {
                let glued = Batch::concat(b.schema().clone(), &got).unwrap();
                assert_eq!(glued, whole[dest], "chunk {chunk_rows} dest {dest}");
            }
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let r = SaltRouter::with_hot_keys([5], 4, 3);
        let b = batch(&[5, 1, 5, 2, 5, 5, 3]);
        assert_eq!(
            r.partition_build(&b, 0).unwrap(),
            r.partition_build(&b, 0).unwrap()
        );
    }
}
