//! Cross-query caching of the global database Bloom filter (`BF_DB`).
//!
//! Building `BF_DB` is the most reusable piece of work in the paper's
//! algorithms: it depends only on the database table, the local predicate,
//! the join-key column and the filter geometry — not on the HDFS side of
//! the query at all. A service running a mixed workload therefore sees the
//! same filter requested over and over (every DB-side, repartition and
//! zigzag run of the same `T'` definition), and can serve the serialized
//! bytes from memory instead of re-scanning every database partition.
//!
//! The cache stores the *serialized* filter (`BloomFilter::to_bytes`): that
//! is exactly what gets multicast to the JEN workers, so a hit is
//! bit-identical to a cold build by construction. Entries are invalidated
//! when the underlying table is rewritten ([`BloomCache::invalidate_table`]
//! — `HybridSystem::load_db_table` calls it automatically), and inserts
//! are generation-checked: a build that started before a rewrite carries
//! the pre-rewrite [`BloomCache::generation`] snapshot and is dropped
//! instead of resurrecting a just-invalidated filter.

use crate::query::HybridQuery;
use hybrid_common::cache::{LruCache, TableGenerations};
use hybrid_common::metrics::Metrics;
use std::sync::Arc;

/// Everything that determines the bits of a global `BF_DB`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BloomKey {
    /// Database table the filter is built over.
    pub table: String,
    /// The local predicate, rendered via `Debug` (expressions are plain
    /// trees with a total, stable `Debug` form — two structurally equal
    /// predicates render identically).
    pub pred: String,
    /// Base-schema column of the join key.
    pub key_col: usize,
    /// Filter geometry: number of bits.
    pub bits: usize,
    /// Filter geometry: number of hash functions.
    pub hashes: u32,
}

impl BloomKey {
    /// The cache key of the `BF_DB` that `query` would build.
    pub fn for_query(query: &HybridQuery) -> BloomKey {
        BloomKey {
            table: query.db_table.clone(),
            pred: format!("{:?}", query.db_pred),
            key_col: query.db_key_base(),
            bits: query.bloom.bits,
            hashes: query.bloom.hashes,
        }
    }
}

/// A capacity-bounded LRU cache of serialized Bloom filters, shared across
/// every session of one [`crate::HybridSystem`]. Counters land under
/// `svc.cache.bloom.*` in the registry the cache was created with (the
/// *root* registry — cache effectiveness is a service-level property, not a
/// per-query one).
#[derive(Clone)]
pub struct BloomCache {
    lru: LruCache<BloomKey, Arc<Vec<u8>>>,
    /// The owning system's per-table load generations; inserts carrying a
    /// stale generation are dropped (the filter was built from pre-rewrite
    /// partitions an in-flight session still held via `Arc`).
    gens: TableGenerations,
}

impl BloomCache {
    pub const METRIC_PREFIX: &'static str = "svc.cache.bloom";

    pub fn new(capacity: usize, metrics: Metrics, gens: TableGenerations) -> BloomCache {
        BloomCache {
            lru: LruCache::new(Self::METRIC_PREFIX, capacity, metrics),
            gens,
        }
    }

    /// Serialized filter for `key`, if cached. Counts a hit or a miss.
    pub fn get(&self, key: &BloomKey) -> Option<Arc<Vec<u8>>> {
        self.lru.get(key)
    }

    /// The load generation of `table` right now. Snapshot this *before*
    /// reading the table to build a filter and hand it to
    /// [`BloomCache::insert`].
    pub fn generation(&self, table: &str) -> u64 {
        self.gens.get(table)
    }

    /// Cache `bytes` for `key`, unless `table` was rewritten since the
    /// caller's [`BloomCache::generation`] snapshot — a stale insert is
    /// dropped (counted under `svc.cache.bloom.stale_inserts`) because the
    /// filter's false negatives over post-rewrite data would silently drop
    /// valid join rows. Returns whether the entry landed.
    pub fn insert(&self, key: BloomKey, bytes: Arc<Vec<u8>>, generation: u64) -> bool {
        let table = key.table.clone();
        self.lru
            .insert_if(key, bytes, || self.gens.get(&table) == generation)
    }

    /// Drop every filter built over `table` (the table was rewritten).
    /// Returns how many entries died.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.lru.invalidate_if(|k| k.table == table)
    }

    pub fn len(&self) -> usize {
        self.lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

/// A normalized fingerprint of a full query: every semantic field, rendered
/// through `Debug`. Two queries with equal fingerprints compute the same
/// result on the same data, whatever algorithm runs them — which is what
/// makes this usable as a *result*-cache key at the service layer.
pub fn query_fingerprint(query: &HybridQuery) -> String {
    format!(
        "db={}|hdfs={}|dbp={:?}|dbproj={:?}|dbk={}|hp={:?}|hproj={:?}|hk={}|post={:?}|grp={:?}|aggs={:?}",
        query.db_table,
        query.hdfs_table,
        query.db_pred,
        query.db_proj,
        query.db_key,
        query.hdfs_pred,
        query.hdfs_proj,
        query.hdfs_key,
        query.post_predicate,
        query.group_expr,
        query.aggs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_bloom::BloomParams;
    use hybrid_common::expr::Expr;
    use hybrid_common::ops::AggSpec;

    fn query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(2, 10),
            db_proj: vec![1, 4],
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 10),
            hdfs_proj: vec![0, 3],
            hdfs_key: 0,
            post_predicate: None,
            group_expr: Expr::col(2),
            aggs: vec![AggSpec::Count],
            bloom: BloomParams::new(1 << 10, 2).unwrap(),
        }
    }

    #[test]
    fn bloom_key_ignores_hdfs_side() {
        let a = BloomKey::for_query(&query());
        let mut q = query();
        q.hdfs_pred = Expr::col_le(1, 3); // different HDFS predicate
        let b = BloomKey::for_query(&q);
        assert_eq!(a, b, "BF_DB depends only on the database side");
        let mut q = query();
        q.db_pred = Expr::col_le(2, 11);
        assert_ne!(a, BloomKey::for_query(&q));
        let mut q = query();
        q.bloom = BloomParams::new(1 << 11, 2).unwrap();
        assert_ne!(a, BloomKey::for_query(&q));
    }

    #[test]
    fn invalidate_table_scopes_to_table() {
        let c = BloomCache::new(8, Metrics::new(), TableGenerations::new());
        let mut k2 = BloomKey::for_query(&query());
        k2.table = "U".into();
        let g_t = c.generation("T");
        let g_u = c.generation("U");
        assert!(c.insert(BloomKey::for_query(&query()), Arc::new(vec![1]), g_t));
        assert!(c.insert(k2.clone(), Arc::new(vec![2]), g_u));
        assert_eq!(c.invalidate_table("T"), 1);
        assert_eq!(c.len(), 1);
        assert!(c.get(&k2).is_some());
    }

    #[test]
    fn stale_insert_after_rewrite_is_dropped() {
        let m = Metrics::new();
        let gens = TableGenerations::new();
        let c = BloomCache::new(8, m.clone(), gens.clone());
        let key = BloomKey::for_query(&query());
        // A slow build snapshots the generation, then the table is
        // rewritten (invalidating nothing — the build hasn't inserted yet)
        // before the build finishes.
        let snap = c.generation("T");
        gens.bump("T");
        c.invalidate_table("T");
        assert!(!c.insert(key.clone(), Arc::new(vec![1]), snap));
        assert!(c.get(&key).is_none(), "pre-rewrite filter must not land");
        assert_eq!(m.get("svc.cache.bloom.stale_inserts"), 1);
        // A build over the rewritten data carries the new generation.
        assert!(c.insert(key.clone(), Arc::new(vec![2]), c.generation("T")));
        assert_eq!(c.get(&key).as_deref(), Some(&vec![2]));
    }

    #[test]
    fn fingerprint_distinguishes_queries() {
        let a = query_fingerprint(&query());
        assert_eq!(a, query_fingerprint(&query()));
        let mut q = query();
        q.hdfs_pred = Expr::col_le(1, 7);
        assert_ne!(a, query_fingerprint(&q));
    }
}
