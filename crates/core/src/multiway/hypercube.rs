//! One-shot hypercube (Shares) star join.
//!
//! The cost-chosen share vector `s` arranges the first `cells = Π s_i` JEN
//! workers as a k-dimensional grid; worker `w < cells` owns the cell with
//! mixed-radix coordinates `c_i(w) = (w / stride_i) mod s_i`, `stride_i =
//! Π_{j<i} s_j`. Every fact tuple routes to exactly **one** cell — one
//! independent seeded hash per axis picks each coordinate — while every
//! dimension-`i` tuple replicates to the `cells / s_i` cells sharing its
//! hashed coordinate on axis `i`. Each cell then holds everything its local
//! k-way join needs, so the whole star completes in a single shuffle pass:
//! the fact table (the big side) moves once, no matter how many dimensions
//! there are — the Shares trade-off of fact movement against dimension
//! replication that [`crate::advisor::advise_multiway`] prices.
//!
//! Workers `w >= cells` own no cell: they still participate in every
//! send/receive barrier (EOS to and from all peers) so the step structure
//! is uniform, but carry no rows.
//!
//! Skew: a fact key hot on axis `i` would flood the one coordinate it
//! hashes to. Hot fact rows instead *round-robin* their axis-`i` coordinate
//! (a per-(axis, key) cursor over `0..s_i`), and dimension-`i` rows with a
//! hot key replicate along the **entire** axis — every (fact, dim) pair
//! still meets exactly once, in the unique cell the fact row landed in.

use super::{
    add_star_aggregation_steps, detect_hot_fact_keys, finalize_partial, meter_shuffle, mw_db_tasks,
    mw_jen_tasks, ordered_batches, take_star_result, MwJen, StarQuery, AXIS_SEED,
};
use crate::algorithms::{Driver, TaskSet};
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, BatchBuilder};
use hybrid_common::error::Result;
use hybrid_common::hash::hash_key_seeded;
use hybrid_common::schema::Schema;
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_batched;
use hybrid_jen::{LocalJoiner, ScanSpec};
use hybrid_net::StreamTag;
use std::collections::HashMap;

/// The grid geometry: share vector, mixed-radix strides, and cell count.
struct Grid {
    shares: Vec<usize>,
    strides: Vec<usize>,
    cells: usize,
}

impl Grid {
    fn new(shares: &[usize]) -> Grid {
        let mut strides = Vec::with_capacity(shares.len());
        let mut acc = 1usize;
        for &s in shares {
            strides.push(acc);
            acc *= s;
        }
        Grid {
            shares: shares.to_vec(),
            strides,
            cells: acc,
        }
    }

    /// Worker `w`'s coordinate on `axis` (callers guarantee `w < cells`).
    fn coord(&self, w: usize, axis: usize) -> usize {
        (w / self.strides[axis]) % self.shares[axis]
    }

    /// The cold route of `key` on `axis`.
    fn axis_coord(&self, key: i64, axis: usize) -> usize {
        (hash_key_seeded(key, AXIS_SEED ^ axis as u64) % self.shares[axis] as u64) as usize
    }

    /// The workers whose axis-`axis` coordinate is `c` — where a
    /// dimension-`axis` tuple hashing to `c` must replicate.
    fn axis_cell_workers(&self, axis: usize, c: usize) -> Vec<usize> {
        (0..self.cells)
            .filter(|&w| self.coord(w, axis) == c)
            .collect()
    }
}

pub(crate) fn execute(sys: &mut HybridSystem, star: &StarQuery, shares: &[usize]) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_jen = sys.config.jen_workers;
    let num_db = sys.config.db_workers;
    let k = star.dims.len();
    let grid = &Grid::new(shares);
    debug_assert!(grid.cells <= num_jen, "share vector exceeds the cluster");

    let plan = &sys.coordinator.plan_scan(&star.fact_table)?;
    let scan_spec = &ScanSpec {
        pred: star.fact_pred.clone(),
        proj: star.fact_proj.clone(),
        bloom_key: None,
    };
    let fact_schema = &plan.table.schema.project(&star.fact_proj)?;
    let dim_schemas: Vec<Schema> = star
        .dims
        .iter()
        .map(|d| {
            sys.db
                .worker(0)
                .partition(&d.table)?
                .schema()
                .project(&d.proj)
        })
        .collect::<Result<_>>()?;
    let dim_schemas = &dim_schemas;

    let hot = &detect_hot_fact_keys(sys, star)?;

    let mut db = TaskSet::new("db", mw_db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", mw_jen_tasks(sys, driver)?);

    // Step 1: every JEN worker scans its fact share and routes each row to
    // the one cell its k axis hashes name. Every worker sends EOS to every
    // peer — including cell-less workers past the grid — so the receive
    // barrier is uniform.
    jen.step(10, move |w, st: &mut MwJen| {
        let blocks = {
            let _permit = driver.compute_permit();
            scan_blocks_batched(
                &sys.jen_workers[w],
                &plan.table,
                &plan.blocks[w],
                scan_spec,
                None,
            )?
            .0
        };
        let span = sys
            .tracer
            .start(sys.jen_workers[w].span_label(), Stage::ShuffleSend);
        // per-(axis, hot key) round-robin cursors — deterministic because
        // blocks arrive in scan order and rows are routed row-at-a-time
        let mut cursors: Vec<HashMap<i64, usize>> = vec![HashMap::new(); k];
        let mut builders: Vec<BatchBuilder> = (0..num_jen)
            .map(|_| BatchBuilder::new(fact_schema.clone()))
            .collect();
        for block in blocks {
            if block.is_empty() {
                continue;
            }
            let keys: Vec<_> = (0..k)
                .map(|axis| {
                    block
                        .column(star.fact_keys[axis])
                        .and_then(|c| c.keys_i64())
                })
                .collect::<Result<_>>()?;
            let mut dest_rows: Vec<Vec<u32>> = vec![Vec::new(); num_jen];
            let mut row_cells = vec![0usize; block.num_rows()];
            for axis in 0..k {
                for (cell, &key) in row_cells.iter_mut().zip(keys[axis].iter()) {
                    let c = if hot[axis].contains(&key) {
                        let cur = cursors[axis].entry(key).or_insert(0);
                        let c = *cur;
                        *cur = (*cur + 1) % grid.shares[axis];
                        c
                    } else {
                        grid.axis_coord(key, axis)
                    };
                    *cell += c * grid.strides[axis];
                }
            }
            for (row, &cell) in row_cells.iter().enumerate() {
                dest_rows[cell].push(row as u32);
            }
            for (dst, rows) in dest_rows.iter().enumerate() {
                if !rows.is_empty() {
                    builders[dst].append_rows(&block, rows)?;
                }
            }
        }
        let (mut rows, mut bytes) = (0u64, 0u64);
        for (dst, builder) in builders.into_iter().enumerate() {
            let piece = builder.finish();
            if dst == w {
                st.cur = vec![piece]; // own cell: no network traffic
            } else {
                rows += piece.num_rows() as u64;
                bytes += piece.serialized_bytes() as u64;
                let to = sys.fabric.jen_endpoints()[dst];
                st.mailbox.send_data(to, StreamTag::HdfsShuffle, &piece)?;
                st.mailbox.send_eos(to, StreamTag::HdfsShuffle)?;
            }
        }
        meter_shuffle(sys, rows, bytes);
        span.done(bytes, rows);
        Ok(())
    });

    // Step 2: DB workers filter each dimension and replicate every row
    // along its axis: to all grid cells sharing the row's hashed
    // coordinate (hot keys: the whole axis). Each dimension flows on its
    // own stream tag; EOS goes to all JEN workers, cell-less ones included.
    db.step(12, move |w, st| {
        for (axis, dq) in star.dims.iter().enumerate() {
            let part = {
                let _permit = driver.compute_permit();
                let span = sys.tracer.start(format!("db-{w}"), Stage::Scan);
                let part = sys
                    .db
                    .worker(w)
                    .scan_filter_project(&dq.table, &dq.pred, &dq.proj)?;
                span.done(0, part.num_rows() as u64);
                part
            };
            let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
            let mut dest_rows: Vec<Vec<u32>> = vec![Vec::new(); num_jen];
            if !part.is_empty() {
                let keys = part.column(dq.key)?.keys_i64()?;
                for (row, &key) in keys.iter().enumerate() {
                    if hot[axis].contains(&key) {
                        // hot key: the matching fact rows round-robin over
                        // the whole axis, so the dimension row must reach
                        // every coordinate of it
                        for cell_rows in &mut dest_rows[..grid.cells] {
                            cell_rows.push(row as u32);
                        }
                    } else {
                        let c = grid.axis_coord(key, axis);
                        for dst in grid.axis_cell_workers(axis, c) {
                            dest_rows[dst].push(row as u32);
                        }
                    }
                }
            }
            let (mut rows, mut bytes) = (0u64, 0u64);
            for (dst, sel) in dest_rows.iter().enumerate() {
                let piece = part.take(sel);
                rows += piece.num_rows() as u64;
                bytes += piece.serialized_bytes() as u64;
                let to = sys.fabric.jen_endpoints()[dst];
                st.mailbox
                    .send_data(to, StreamTag::dim_data(axis), &piece)?;
                st.mailbox.send_eos(to, StreamTag::dim_data(axis))?;
            }
            meter_shuffle(sys, rows, bytes);
            span.done(bytes, rows);
        }
        Ok(())
    });

    // Step 3: each cell receives its fact slice and its k dimension
    // slices, builds k hash tables, and probes them in identity order —
    // the physical layout is dim_{k-1}' ++ … ++ dim_0' ++ fact', the same
    // prefix stack a cascade in identity order produces.
    jen.step(20, move |w, st: &mut MwJen| {
        let label = sys.jen_workers[w].span_label();
        let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
        let mut probes = std::mem::take(&mut st.cur);
        probes.extend(ordered_batches(
            st.mailbox
                .take_stream(StreamTag::HdfsShuffle, num_jen - 1)?,
        ));
        let dims: Vec<Vec<Batch>> = (0..k)
            .map(|axis| {
                Ok(ordered_batches(
                    st.mailbox.take_stream(StreamTag::dim_data(axis), num_db)?,
                ))
            })
            .collect::<Result<_>>()?;
        let fact_rows: u64 = probes.iter().map(|b| b.num_rows() as u64).sum();
        let dim_rows: u64 = dims.iter().flatten().map(|b| b.num_rows() as u64).sum();
        recv_span.done(0, fact_rows + dim_rows);
        sys.metrics
            .add(&format!("net.shuffle.rows.jen-{w}"), dim_rows);
        let _permit = driver.compute_permit();
        // probe dimension by dimension: after joining axes 0..i the fact
        // columns sit at offset Σ_{j<=i} width_j from a prefix stack of
        // builds
        let mut cur_schema = fact_schema.clone();
        let mut fact_off = 0usize;
        for (axis, dim_batches) in dims.into_iter().enumerate() {
            let dq = &star.dims[axis];
            let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
            let built: u64 = dim_batches.iter().map(|b| b.num_rows() as u64).sum();
            let mut joiner = LocalJoiner::new(
                dim_schemas[axis].clone(),
                dq.key,
                sys.config.jen_memory_limit_rows,
                sys.query_budget
                    .as_ref()
                    .map(|q| q.worker_share(sys.config.jen_workers)),
                sys.metrics.clone(),
            )?;
            for b in dim_batches {
                joiner.build(b)?;
            }
            build_span.done(0, built);
            let probe_rows: u64 = probes.iter().map(|b| b.num_rows() as u64).sum();
            let probe_span = sys.tracer.start(label.clone(), Stage::Probe);
            let joined = joiner.probe_all(&cur_schema, probes, fact_off + star.fact_keys[axis])?;
            probe_span.done(0, probe_rows);
            cur_schema = joined.schema().clone();
            fact_off += dq.proj.len();
            probes = vec![joined];
        }
        let joined = Batch::concat(cur_schema, &probes)?;
        let identity: Vec<usize> = (0..k).collect();
        st.partial = Some(finalize_partial(sys, star, &identity, joined, label)?);
        Ok(())
    });

    add_star_aggregation_steps(sys, star, &mut jen, &mut db, 30)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_star_result(db_states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_coordinates_roundtrip() {
        let g = Grid::new(&[2, 2, 2]);
        assert_eq!(g.cells, 8);
        for w in 0..8 {
            let recon: usize = (0..3).map(|a| g.coord(w, a) * g.strides[a]).sum();
            assert_eq!(recon, w);
        }
    }

    #[test]
    fn axis_workers_partition_the_grid() {
        let g = Grid::new(&[3, 2]);
        for axis in 0..2 {
            let mut seen = HashSet::new();
            for c in 0..g.shares[axis] {
                let ws = g.axis_cell_workers(axis, c);
                assert_eq!(ws.len(), g.cells / g.shares[axis]);
                seen.extend(ws);
            }
            assert_eq!(seen.len(), g.cells, "axis {axis} slices cover the grid");
        }
    }

    #[test]
    fn fact_route_meets_its_dimension_rows() {
        // the cell a (cold) fact row lands in is on the replication slice
        // of each of its keys
        let g = Grid::new(&[2, 3]);
        for key0 in 0..20i64 {
            for key1 in 20..40i64 {
                let cell =
                    g.axis_coord(key0, 0) * g.strides[0] + g.axis_coord(key1, 1) * g.strides[1];
                assert!(g
                    .axis_cell_workers(0, g.axis_coord(key0, 0))
                    .contains(&cell));
                assert!(g
                    .axis_cell_workers(1, g.axis_coord(key1, 1))
                    .contains(&cell));
            }
        }
    }
}
