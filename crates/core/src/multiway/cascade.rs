//! Cascaded binary star join: a left-deep chain of broadcast/repartition
//! steps over the dimensions, in advisor-priced order.
//!
//! Step `i` joins dimension `steps[i].dim` into the running intermediate
//! `cur` (initially the filtered fact scan):
//!
//! * **broadcast** — every DB worker ships its whole filtered dimension
//!   slice to every JEN worker; `cur` stays put.
//! * **repartition** — DB workers hash-route the dimension by its key,
//!   JEN workers re-shuffle `cur` by the matching foreign key with the
//!   same agreed hash (skew-salted when the key has detected heavy
//!   hitters), so every `(cur, dim)` pair meets exactly once.
//!
//! Either way the step ends in a local hash join — dimension rows build,
//! `cur` probes — which prepends the dimension's columns: after the whole
//! cascade the physical layout is `dim_{last}' ++ … ++ dim_{first}' ++
//! fact'`, undone by `physical_map` at finalize time.
//!
//! Salt-role inversion: in a cascade step the *dimension* is the hash-build
//! side (its keys are near-unique — no build skew), while the skew lives in
//! `cur`'s foreign-key stream. So the `cur` re-shuffle splits hot-key rows
//! round-robin ([`SaltRouter::partition_build_sel`]) and the dimension
//! replicates its hot-key rows to the salt workers
//! ([`SaltRouter::partition_probe`]) — the mirror image of the two-table
//! repartition join, same meets-exactly-once guarantee.
//!
//! A broadcast step keeps a no-op re-shuffle step at its slot so driver
//! step ordinals — which the chaos layer's worker kills count — do not
//! depend on the advisor's per-step mode choices.

use super::{
    add_star_aggregation_steps, detect_hot_fact_keys, finalize_partial, meter_shuffle, mw_db_tasks,
    mw_jen_tasks, ordered_batches, take_star_result, MwJen, StarQuery,
};
use crate::advisor::CascadeStep;
use crate::algorithms::{Driver, TaskSet};
use crate::skew::{SaltCursors, SaltRouter};
use crate::system::HybridSystem;
use hybrid_common::batch::{Batch, BatchBuilder};
use hybrid_common::error::Result;
use hybrid_common::hash::agreed_shuffle_partition;
use hybrid_common::ops::{partition_by_key, partition_sel};
use hybrid_common::schema::Schema;
use hybrid_common::trace::Stage;
use hybrid_jen::pipeline::scan_blocks_batched;
use hybrid_jen::{LocalJoiner, ScanSpec};
use hybrid_net::StreamTag;

pub(crate) fn execute(
    sys: &mut HybridSystem,
    star: &StarQuery,
    steps: &[CascadeStep],
) -> Result<Batch> {
    let sys = &*sys;
    let driver = &Driver::from_config(&sys.config);
    let num_jen = sys.config.jen_workers;
    let num_db = sys.config.db_workers;

    let plan = &sys.coordinator.plan_scan(&star.fact_table)?;
    let scan_spec = &ScanSpec {
        pred: star.fact_pred.clone(),
        proj: star.fact_proj.clone(),
        bloom_key: None,
    };
    let fact_schema = plan.table.schema.project(&star.fact_proj)?;
    let dim_schemas: Vec<Schema> = star
        .dims
        .iter()
        .map(|d| {
            sys.db
                .worker(0)
                .partition(&d.table)?
                .schema()
                .project(&d.proj)
        })
        .collect::<Result<_>>()?;
    let dim_schemas = &dim_schemas;

    // Heavy hitters per foreign-key axis; both clusters must route from
    // the same hot sets, so detection happens once, up front.
    let hot = detect_hot_fact_keys(sys, star)?;
    let routers: &Vec<Option<SaltRouter>> = &hot
        .into_iter()
        .map(|h| {
            (!h.is_empty()).then(|| {
                SaltRouter::with_hot_keys(h, num_jen, sys.config.salt_buckets.unwrap_or(1))
            })
        })
        .collect();

    // cur_schemas[i] = the intermediate's schema entering step i (each
    // local join prepends its build side); fact_offs[i] = where the fact
    // columns start inside it.
    let mut cur_schemas = vec![fact_schema];
    let mut fact_offs = vec![0usize];
    for s in steps {
        let prev = cur_schemas.last().expect("seeded above");
        cur_schemas.push(dim_schemas[s.dim].join(prev));
        fact_offs.push(fact_offs.last().expect("seeded above") + star.dims[s.dim].proj.len());
    }
    let cur_schemas = &cur_schemas;
    let fact_offs = &fact_offs;
    let order: Vec<usize> = steps.iter().map(|s| s.dim).collect();
    let order = &order;

    let mut db = TaskSet::new("db", mw_db_tasks(sys, driver)?);
    let mut jen = TaskSet::new("jen", mw_jen_tasks(sys, driver)?);

    // Step 1: every JEN worker scans its fact share (per-block batches —
    // the intermediate stays block-framed until its first re-shuffle).
    jen.step(10, move |w, st: &mut MwJen| {
        let _permit = driver.compute_permit();
        st.cur = scan_blocks_batched(
            &sys.jen_workers[w],
            &plan.table,
            &plan.blocks[w],
            scan_spec,
            None,
        )?
        .0;
        Ok(())
    });

    for (i, step) in steps.iter().enumerate() {
        let base = 20 + 10 * i as u32;
        let d = step.dim;
        let broadcast = step.broadcast;
        let fk_col = fact_offs[i] + star.fact_keys[d];
        let dq = &star.dims[d];

        // Step 2+3i: DB workers filter the dimension and ship it —
        // everywhere (broadcast) or hash-routed to the key's owner.
        db.step(base, move |w, st| {
            let part = {
                let _permit = driver.compute_permit();
                let span = sys.tracer.start(format!("db-{w}"), Stage::Scan);
                let part = sys
                    .db
                    .worker(w)
                    .scan_filter_project(&dq.table, &dq.pred, &dq.proj)?;
                span.done(0, part.num_rows() as u64);
                part
            };
            let span = sys.tracer.start(format!("db-{w}"), Stage::ShuffleSend);
            if broadcast {
                for jen_ep in sys.fabric.jen_endpoints() {
                    st.mailbox
                        .send_data(jen_ep, StreamTag::dim_data(i), &part)?;
                    st.mailbox.send_eos(jen_ep, StreamTag::dim_data(i))?;
                }
                meter_shuffle(
                    sys,
                    part.num_rows() as u64 * num_jen as u64,
                    part.serialized_bytes() as u64 * num_jen as u64,
                );
            } else {
                // hot-key dimension rows replicate to the salt workers
                // that will each hold a slice of the split `cur` stream
                let routed = match &routers[d] {
                    Some(r) => r.partition_probe(&part, dq.key)?,
                    None => partition_by_key(&part, dq.key, num_jen, agreed_shuffle_partition)?,
                };
                let (mut rows, mut bytes) = (0u64, 0u64);
                for (jen_idx, piece) in routed.into_iter().enumerate() {
                    rows += piece.num_rows() as u64;
                    bytes += piece.serialized_bytes() as u64;
                    let dst = sys.fabric.jen_endpoints()[jen_idx];
                    st.mailbox.send_data(dst, StreamTag::dim_data(i), &piece)?;
                    st.mailbox.send_eos(dst, StreamTag::dim_data(i))?;
                }
                meter_shuffle(sys, rows, bytes);
            }
            span.done(part.serialized_bytes() as u64, part.num_rows() as u64);
            Ok(())
        });

        // Step 3+3i: JEN workers re-shuffle `cur` by the step's foreign
        // key. A broadcast step skips the shuffle but keeps the step, so
        // chaos kill ordinals stay mode-independent.
        jen.step(base + 2, move |w, st: &mut MwJen| {
            if broadcast {
                return Ok(());
            }
            let span = sys
                .tracer
                .start(sys.jen_workers[w].span_label(), Stage::ShuffleSend);
            let schema = &cur_schemas[i];
            let mut cursors = SaltCursors::new();
            let mut builders: Vec<BatchBuilder> = (0..num_jen)
                .map(|_| BatchBuilder::new(schema.clone()))
                .collect();
            let (mut rows, mut bytes) = (0u64, 0u64);
            for block in std::mem::take(&mut st.cur) {
                if block.is_empty() {
                    continue;
                }
                // hot-key `cur` rows split round-robin over salt workers
                let sels = match &routers[d] {
                    Some(r) => r.partition_build_sel(&block, fk_col, &mut cursors)?,
                    None => partition_sel(&block, fk_col, num_jen, agreed_shuffle_partition)?,
                };
                for (dst, sel) in sels.iter().enumerate() {
                    builders[dst].append_rows(&block, sel.as_slice())?;
                }
            }
            for (dst, builder) in builders.into_iter().enumerate() {
                let piece = builder.finish();
                if dst == w {
                    st.cur = vec![piece]; // local slice: no network traffic
                } else {
                    rows += piece.num_rows() as u64;
                    bytes += piece.serialized_bytes() as u64;
                    let to = sys.fabric.jen_endpoints()[dst];
                    st.mailbox
                        .send_data(to, StreamTag::cascade_shuffle(i), &piece)?;
                    st.mailbox.send_eos(to, StreamTag::cascade_shuffle(i))?;
                }
            }
            meter_shuffle(sys, rows, bytes);
            span.done(bytes, rows);
            Ok(())
        });

        // Step 4+3i: receive, build on the dimension, probe with `cur`.
        jen.step(base + 4, move |w, st: &mut MwJen| {
            let label = sys.jen_workers[w].span_label();
            let recv_span = sys.tracer.start(label.clone(), Stage::ShuffleRecv);
            let dim_batches =
                ordered_batches(st.mailbox.take_stream(StreamTag::dim_data(i), num_db)?);
            let mut probes = std::mem::take(&mut st.cur);
            if !broadcast {
                let got = st
                    .mailbox
                    .take_stream(StreamTag::cascade_shuffle(i), num_jen - 1)?;
                probes.extend(ordered_batches(got));
            }
            let dim_rows: u64 = dim_batches.iter().map(|b| b.num_rows() as u64).sum();
            recv_span.done(0, dim_rows);
            // per-worker build-side balance, the finish_run ratio's input
            sys.metrics
                .add(&format!("net.shuffle.rows.jen-{w}"), dim_rows);
            let _permit = driver.compute_permit();
            let build_span = sys.tracer.start(label.clone(), Stage::HashBuild);
            let mut joiner = LocalJoiner::new(
                dim_schemas[d].clone(),
                dq.key,
                sys.config.jen_memory_limit_rows,
                sys.query_budget
                    .as_ref()
                    .map(|q| q.worker_share(sys.config.jen_workers)),
                sys.metrics.clone(),
            )?;
            for b in dim_batches {
                joiner.build(b)?;
            }
            build_span.done(0, dim_rows);
            let probe_rows: u64 = probes.iter().map(|b| b.num_rows() as u64).sum();
            let probe_span = sys.tracer.start(label, Stage::Probe);
            let joined = joiner.probe_all(&cur_schemas[i], probes, fk_col)?;
            probe_span.done(0, probe_rows);
            st.cur = vec![joined];
            Ok(())
        });
    }

    // Finalize: residual predicate + per-worker partial aggregate.
    let fin = 20 + 10 * steps.len() as u32;
    jen.step(fin, move |w, st: &mut MwJen| {
        let _permit = driver.compute_permit();
        let joined = Batch::concat(
            cur_schemas.last().expect("seeded").clone(),
            &std::mem::take(&mut st.cur),
        )?;
        st.partial = Some(finalize_partial(
            sys,
            star,
            order,
            joined,
            sys.jen_workers[w].span_label(),
        )?);
        Ok(())
    });

    add_star_aggregation_steps(sys, star, &mut jen, &mut db, fin + 2)?;

    let (db_states, _jen_states) = driver.run_pair(db, jen)?;
    take_star_result(db_states)
}
