//! Multiway star-schema joins: cascaded binary plans and the one-shot
//! hypercube (Shares) shuffle.
//!
//! A [`StarQuery`] joins one HDFS fact table against up to
//! [`MAX_STAR_DIMENSIONS`] database dimension tables on per-dimension
//! foreign keys. Two execution families cover it:
//!
//! * **Cascade** ([`cascade`]) — a left-deep chain of the existing binary
//!   joins: each step ships one filtered dimension to the JEN cluster
//!   (broadcast, or hash-routed with an intermediate re-shuffle) and joins
//!   it into the running intermediate. Every step reuses the two-table
//!   machinery — mailbox streams, salted routing, spill-aware local
//!   joiners — so the per-step invariants (bit-identical results at any
//!   thread/batch count, conservation laws, spill accounting) carry over.
//! * **Hypercube** ([`hypercube`]) — the Shares scheme of Afrati & Ullman:
//!   workers form a k-dimensional grid sized by a cost-chosen share
//!   vector; every fact row routes to exactly one cell (one hash per
//!   axis), every dimension row replicates along its own axis. All joins
//!   then run locally in one pass — the fact moves once, however many
//!   dimensions there are.
//!
//! [`run_star`] samples the tables, lets the advisor price the best
//! cascade order against the best share vector
//! ([`crate::advisor::advise_multiway`]), and executes the winner — or a
//! forced family via [`MultiwayPlanner`] / the `HYBRID_MULTIWAY_PLANNER`
//! env knob.
//!
//! Expressions about joined rows (`post_predicate`, `group_expr`, `aggs`)
//! are written against the **canonical joined layout** `fact' ++ dim_0' ++
//! … ++ dim_{k-1}'`. Executors produce a physical layout determined by
//! their join order (each binary join prepends the build side); they remap
//! canonical expressions through `physical_map` before evaluating, so
//! every plan computes the same answer.
//!
//! **Determinism.** Each receive step orders incoming batches by sender
//! endpoint (stable, per-sender FIFO preserved, own piece first) before
//! building or probing, so hash-table iteration order, salted round-robin
//! cursors, and therefore results and row orders are identical at any
//! thread count.

pub mod cascade;
pub mod hypercube;

use crate::advisor::{advise_multiway, MultiwayPlan};
use crate::algorithms::{finish_run, Driver, Mailbox, StreamData, TaskSet};
use crate::estimation::sample_star_stats;
use crate::skew::{MIN_HOT_COUNT, SALT_SAMPLE_BLOCKS, SKETCH_CAPACITY};
use crate::stats::RunOutput;
use crate::system::HybridSystem;
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::expr::Expr;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::ops::{AggSpec, HashAggregator};
use hybrid_common::sketch::SpaceSaving;
use hybrid_common::trace::Stage;
use hybrid_net::{Endpoint, StreamTag};
use hybrid_storage::decode;
use std::collections::HashSet;

/// Hard cap on star dimensions: stream tags are static (EOS counts
/// accumulate per tag for a whole run, so cascade steps cannot share one)
/// and the tag space provides three dimension slots.
pub const MAX_STAR_DIMENSIONS: usize = 3;

/// Per-axis seed salt for the hypercube's independent hash functions
/// (axis `i` hashes with `AXIS_SEED ^ i`).
pub(crate) const AXIS_SEED: u64 = 0xCE11_5EED_A215_0000;

/// One dimension table of a star query.
#[derive(Debug, Clone, PartialEq)]
pub struct DimQuery {
    /// Name of the dimension table in the parallel database.
    pub table: String,
    /// Local predicate over the dimension's base schema.
    pub pred: Expr,
    /// Columns kept after projection (base-schema indexes).
    pub proj: Vec<usize>,
    /// Position of the join key **within `proj`**.
    pub key: usize,
}

/// A star-schema query: one HDFS fact table equi-joined against `k`
/// database dimensions on `k` foreign-key columns, with a residual
/// predicate and a group-by/aggregate over the joined rows.
#[derive(Debug, Clone, PartialEq)]
pub struct StarQuery {
    /// Name of the fact table on HDFS.
    pub fact_table: String,
    /// Local predicate over the fact table's base schema.
    pub fact_pred: Expr,
    /// Fact columns kept after projection (base-schema indexes).
    pub fact_proj: Vec<usize>,
    /// Position of dimension `i`'s foreign key **within `fact_proj`**.
    pub fact_keys: Vec<usize>,
    /// The dimensions, in query order.
    pub dims: Vec<DimQuery>,
    /// Residual predicate over the canonical joined layout.
    pub post_predicate: Option<Expr>,
    /// Group-by key expression over the canonical joined layout.
    pub group_expr: Expr,
    /// Aggregates over the canonical joined layout.
    pub aggs: Vec<AggSpec>,
}

impl StarQuery {
    /// Sanity-check the query against itself (dimension cap, projection
    /// and key bounds, joined-layout expression bounds).
    pub fn validate(&self) -> Result<()> {
        if self.dims.is_empty() {
            return Err(HybridError::config(
                "star query needs at least one dimension",
            ));
        }
        if self.dims.len() > MAX_STAR_DIMENSIONS {
            return Err(HybridError::config(format!(
                "star query has {} dimensions, the cap is {MAX_STAR_DIMENSIONS}",
                self.dims.len()
            )));
        }
        if self.fact_keys.len() != self.dims.len() {
            return Err(HybridError::config(format!(
                "{} foreign keys for {} dimensions",
                self.fact_keys.len(),
                self.dims.len()
            )));
        }
        if self.fact_proj.is_empty() {
            return Err(HybridError::config("fact projection must be non-empty"));
        }
        for (i, &fk) in self.fact_keys.iter().enumerate() {
            if fk >= self.fact_proj.len() {
                return Err(HybridError::config(format!(
                    "fact key {i} at {fk} out of bounds for projection of {}",
                    self.fact_proj.len()
                )));
            }
        }
        for (i, d) in self.dims.iter().enumerate() {
            if d.proj.is_empty() {
                return Err(HybridError::config(format!(
                    "dimension {i} projection must be non-empty"
                )));
            }
            if d.key >= d.proj.len() {
                return Err(HybridError::config(format!(
                    "dimension {i} key {} out of bounds for projection of {}",
                    d.key,
                    d.proj.len()
                )));
            }
        }
        let joined_width = self.joined_width();
        for agg in &self.aggs {
            let col = match *agg {
                AggSpec::Count => None,
                AggSpec::SumI64(c) | AggSpec::MinI64(c) | AggSpec::MaxI64(c) => Some(c),
            };
            if let Some(c) = col {
                if c >= joined_width {
                    return Err(HybridError::config(format!(
                        "aggregate references column {c}, joined width is {joined_width}"
                    )));
                }
            }
        }
        for (name, expr) in [
            ("post_predicate", self.post_predicate.as_ref()),
            ("group_expr", Some(&self.group_expr)),
        ] {
            if let Some(e) = expr {
                if let Some(&max) = e.referenced_columns().iter().next_back() {
                    if max >= joined_width {
                        return Err(HybridError::config(format!(
                            "{name} references column {max}, joined width is {joined_width}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Width of the canonical joined layout.
    pub fn joined_width(&self) -> usize {
        self.fact_proj.len() + self.dims.iter().map(|d| d.proj.len()).sum::<usize>()
    }
}

/// Which multiway execution family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiwayPlanner {
    /// Force the best-priced left-deep cascade.
    Cascade,
    /// Force the best-priced hypercube share vector.
    Hypercube,
    /// Let the advisor pick (the default).
    Auto,
}

impl MultiwayPlanner {
    pub fn name(self) -> &'static str {
        match self {
            MultiwayPlanner::Cascade => "cascade",
            MultiwayPlanner::Hypercube => "hypercube",
            MultiwayPlanner::Auto => "auto",
        }
    }

    pub fn parse(s: &str) -> Option<MultiwayPlanner> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cascade" => Some(MultiwayPlanner::Cascade),
            "hypercube" => Some(MultiwayPlanner::Hypercube),
            "auto" => Some(MultiwayPlanner::Auto),
            _ => None,
        }
    }

    /// `HYBRID_MULTIWAY_PLANNER` (`cascade` / `hypercube` / `auto`),
    /// defaulting to `Auto`; unparseable values fall back to `Auto`.
    pub fn from_env() -> MultiwayPlanner {
        std::env::var("HYBRID_MULTIWAY_PLANNER")
            .ok()
            .and_then(|v| MultiwayPlanner::parse(&v))
            .unwrap_or(MultiwayPlanner::Auto)
    }
}

impl std::fmt::Display for MultiwayPlanner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execute `star` on `system` under `planner`, starting from clean
/// metrics; returns the result plus the movement summary.
///
/// Sampling runs *before* the metric reset (as [`crate::run_auto`] does
/// for two-table queries), so the run snapshot carries only execution
/// traffic plus the `advisor.multiway.*` decision counters.
pub fn run_star(
    system: &mut HybridSystem,
    star: &StarQuery,
    planner: MultiwayPlanner,
) -> Result<RunOutput> {
    star.validate()?;
    let est = sample_star_stats(system, star, 8)?;
    let choice = advise_multiway(&est);
    prepare_star_run(system, star)?;
    // Decision audit trail: integer-rounded costs and the choice live in
    // the run snapshot (deterministic — derived from strided sampling).
    system.metrics.add(
        "advisor.multiway.cost.cascade",
        choice.cascade.1.round() as u64,
    );
    system.metrics.add(
        "advisor.multiway.cost.hypercube",
        choice.hypercube.1.round() as u64,
    );
    let auto_hypercube = matches!(choice.plan, MultiwayPlan::Hypercube(_));
    system.metrics.add(
        "advisor.multiway.chose_hypercube",
        u64::from(auto_hypercube),
    );
    let plan = match planner {
        MultiwayPlanner::Cascade => MultiwayPlan::Cascade(choice.cascade.0.clone()),
        MultiwayPlanner::Hypercube => MultiwayPlan::Hypercube(choice.hypercube.0.clone()),
        MultiwayPlanner::Auto => choice.plan.clone(),
    };
    let result = match &plan {
        MultiwayPlan::Cascade(steps) => {
            system.metrics.add("advisor.multiway.ran_hypercube", 0);
            cascade::execute(system, star, steps)?
        }
        MultiwayPlan::Hypercube(shares) => {
            system.metrics.add("advisor.multiway.ran_hypercube", 1);
            hypercube::execute(system, star, shares)?
        }
    };
    Ok(finish_run(system, result))
}

/// The multiway prologue, mirroring [`crate::algorithms::prepare_run`]:
/// validate, claim a memory grant on a budgeted system, and start from
/// clean metrics, spans, and fabric.
pub(crate) fn prepare_star_run(system: &mut HybridSystem, star: &StarQuery) -> Result<()> {
    star.validate()?;
    if system.query_budget.is_none() && system.mem_pool.is_bounded() {
        system.query_budget = Some(system.mem_pool.reserve_remaining("direct-run")?);
    }
    system.reset_metrics();
    system.tracer.reset();
    system.fabric.purge();
    Ok(())
}

// ---------------------------------------------------------------------------
// shared per-worker state, plumbing, and helpers
// ---------------------------------------------------------------------------

/// Per-worker state threaded through a multiway JEN [`TaskSet`].
pub(crate) struct MwJen {
    pub mailbox: Mailbox,
    /// The running intermediate (fact scan output, then join outputs).
    pub cur: Vec<Batch>,
    /// This worker's partial aggregate.
    pub partial: Option<Batch>,
}

/// Per-worker state threaded through a multiway DB [`TaskSet`].
pub(crate) struct MwDb {
    pub mailbox: Mailbox,
    /// The final query result (worker 0 only).
    pub result: Option<Batch>,
}

pub(crate) fn mw_jen_tasks(sys: &HybridSystem, driver: &Driver) -> Result<Vec<MwJen>> {
    sys.jen_workers
        .iter()
        .map(|w| {
            Ok(MwJen {
                mailbox: Mailbox::new(sys, Endpoint::Jen(w.id()))?
                    .with_cancel(driver.cancel_token()),
                cur: Vec::new(),
                partial: None,
            })
        })
        .collect()
}

pub(crate) fn mw_db_tasks(sys: &HybridSystem, driver: &Driver) -> Result<Vec<MwDb>> {
    (0..sys.config.db_workers)
        .map(|w| {
            Ok(MwDb {
                mailbox: Mailbox::new(sys, Endpoint::Db(DbWorkerId(w)))?
                    .with_cancel(driver.cancel_token()),
                result: None,
            })
        })
        .collect()
}

/// Received batches in canonical sender order: stable-sorted by endpoint
/// (DB workers before JEN workers, ascending index), per-sender FIFO
/// arrival order preserved. Every multiway receive step runs its input
/// through this, which pins hash-build insertion order, probe order, and
/// salt cursors to the same sequence at any thread count.
pub(crate) fn ordered_batches(got: StreamData) -> Vec<Batch> {
    fn key(e: Endpoint) -> (u8, usize) {
        match e {
            Endpoint::Db(id) => (0, id.index()),
            Endpoint::Jen(id) => (1, id.index()),
            Endpoint::JenCoordinator => (2, 0),
        }
    }
    let mut tagged: Vec<((u8, usize), Batch)> = got
        .batch_senders
        .iter()
        .map(|&e| key(e))
        .zip(got.batches)
        .collect();
    tagged.sort_by_key(|(k, _)| *k);
    tagged.into_iter().map(|(_, b)| b).collect()
}

/// The canonical→physical column map after joining dimensions in `order`.
///
/// Each binary join prepends its build side, so after the cascade the
/// physical layout is `dim_{order[k-1]}' ++ … ++ dim_{order[0]}' ++ fact'`
/// (the hypercube probes in identity order and lands on the same shape
/// with `order = 0..k`). Index the result with a canonical column to get
/// its physical position.
pub(crate) fn physical_map(star: &StarQuery, order: &[usize]) -> Vec<usize> {
    let fact_width = star.fact_proj.len();
    let widths: Vec<usize> = star.dims.iter().map(|d| d.proj.len()).collect();
    // physical segment sequence: reversed join order, then the fact
    let mut offsets = vec![0usize; star.dims.len() + 1]; // [fact, dim 0, dim 1, ..]
    let mut at = 0usize;
    for &d in order.iter().rev() {
        offsets[d + 1] = at;
        at += widths[d];
    }
    offsets[0] = at;
    let mut map = Vec::with_capacity(star.joined_width());
    for c in 0..fact_width {
        map.push(offsets[0] + c);
    }
    for (d, &w) in widths.iter().enumerate() {
        for c in 0..w {
            map.push(offsets[d + 1] + c);
        }
    }
    map
}

/// Rewrite a canonical joined-layout expression for the physical layout of
/// a join `order` (see [`physical_map`]).
pub(crate) fn remap_expr(star: &StarQuery, order: &[usize], expr: &Expr) -> Expr {
    let map = physical_map(star, order);
    expr.remap_columns(&|c| map.get(c).copied())
        .expect("validated expressions stay in bounds")
}

/// Canonical aggregates rewritten for the physical layout of `order`.
pub(crate) fn remap_aggs(star: &StarQuery, order: &[usize]) -> Vec<AggSpec> {
    let map = physical_map(star, order);
    star.aggs
        .iter()
        .map(|a| match *a {
            AggSpec::Count => AggSpec::Count,
            AggSpec::SumI64(c) => AggSpec::SumI64(map[c]),
            AggSpec::MinI64(c) => AggSpec::MinI64(map[c]),
            AggSpec::MaxI64(c) => AggSpec::MaxI64(map[c]),
        })
        .collect()
}

/// Post-join tail of one worker: apply the (remapped) residual predicate
/// and fold the joined rows into this worker's partial aggregate.
pub(crate) fn finalize_partial(
    sys: &HybridSystem,
    star: &StarQuery,
    order: &[usize],
    joined: Batch,
    label: String,
) -> Result<Batch> {
    let joined = match &star.post_predicate {
        Some(p) => {
            let mask = remap_expr(star, order, p).eval_predicate(&joined)?;
            joined.filter(&mask)?
        }
        None => joined,
    };
    let agg_span = sys.tracer.start(label, Stage::Aggregate);
    let groups = remap_expr(star, order, &star.group_expr).eval_i64(&joined)?;
    let mut agg = HashAggregator::new(remap_aggs(star, order));
    agg.update(&groups, &joined)?;
    agg_span.done(0, joined.num_rows() as u64);
    Ok(agg.finish())
}

/// The shared aggregation epilogue at `seq..seq+2`, mirroring the
/// two-table [`crate::algorithms::add_final_aggregation_steps`]: partials
/// travel to the designated JEN worker, which merges them and ships the
/// final result to DB worker 0.
pub(crate) fn add_star_aggregation_steps<'env>(
    sys: &'env HybridSystem,
    star: &'env StarQuery,
    jen: &mut TaskSet<'env, MwJen>,
    db: &mut TaskSet<'env, MwDb>,
    seq: u32,
) -> Result<()> {
    let designated = sys.coordinator.designated_worker()?;
    let num_jen = sys.config.jen_workers;
    jen.step(seq, move |w, st| {
        if w == designated.index() {
            return Ok(());
        }
        let partial = st
            .partial
            .take()
            .ok_or_else(|| HybridError::exec("missing partial aggregate"))?;
        let to = Endpoint::Jen(designated);
        st.mailbox.send_data(to, StreamTag::PartialAgg, &partial)?;
        st.mailbox.send_eos(to, StreamTag::PartialAgg)
    });
    jen.step(seq + 1, move |w, st| {
        if w != designated.index() {
            return Ok(());
        }
        let agg_span = sys
            .tracer
            .start(format!("jen-{}", designated.index()), Stage::Aggregate);
        // merge_partial folds accumulator columns, so the canonical agg
        // specs serve unchanged — no layout remap applies to partials
        let mut merger = HashAggregator::new(star.aggs.clone());
        if let Some(p) = st.partial.take() {
            merger.merge_partial(&p)?;
        }
        let received = st.mailbox.take_stream(StreamTag::PartialAgg, num_jen - 1)?;
        for p in &received.batches {
            merger.merge_partial(p)?;
        }
        let final_batch = merger.finish();
        agg_span.done(0, final_batch.num_rows() as u64);
        let db0 = Endpoint::Db(DbWorkerId(0));
        st.mailbox
            .send_data(db0, StreamTag::FinalResult, &final_batch)?;
        st.mailbox.send_eos(db0, StreamTag::FinalResult)
    });
    db.step(seq + 2, move |w, st| {
        if w != 0 {
            return Ok(());
        }
        let got = st.mailbox.take_stream(StreamTag::FinalResult, 1)?;
        let schema = HashAggregator::new(star.aggs.clone())
            .finish()
            .schema()
            .clone();
        st.result = Some(if got.batches.is_empty() {
            Batch::empty(schema)
        } else {
            Batch::concat(schema, &got.batches)?
        });
        Ok(())
    });
    Ok(())
}

/// Pull the final result off DB worker 0's state after a driver run.
pub(crate) fn take_star_result(mut db_states: Vec<MwDb>) -> Result<Batch> {
    db_states
        .first_mut()
        .and_then(|st| st.result.take())
        .ok_or_else(|| HybridError::exec("no final result on DB worker 0"))
}

/// Uniform data-movement meters every multiway shuffle send reports
/// (cross-network only — local pieces never count). `bench_baseline`
/// compares planners on exactly these counters.
pub(crate) fn meter_shuffle(sys: &HybridSystem, rows: u64, bytes: u64) {
    sys.metrics.add("multiway.shuffle.tuples", rows);
    sys.metrics.add("multiway.shuffle.bytes", bytes);
}

/// Per-axis heavy-hitter foreign keys of the filtered fact table, gated
/// exactly like the two-table [`crate::skew::SaltRouter::detect`]: a
/// `salt_buckets` setting and ≥ 2 JEN workers, strided block sampling,
/// one [`SpaceSaving`] sketch per axis, fair-share threshold. Empty sets
/// mean "no salting on this axis".
pub(crate) fn detect_hot_fact_keys(
    sys: &HybridSystem,
    star: &StarQuery,
) -> Result<Vec<HashSet<i64>>> {
    let k = star.dims.len();
    let cold = vec![HashSet::new(); k];
    if sys.config.salt_buckets.is_none() {
        return Ok(cold);
    }
    let n = sys.config.jen_workers;
    if n < 2 {
        return Ok(cold);
    }
    let meta = sys.coordinator.lookup_table(&star.fact_table)?;
    let blocks = sys.hdfs.read().file_blocks(&meta.path)?;
    let picked = SALT_SAMPLE_BLOCKS.clamp(1, blocks.len().max(1));
    let mut sketches: Vec<SpaceSaving> =
        (0..k).map(|_| SpaceSaving::new(SKETCH_CAPACITY)).collect();
    for i in 0..picked {
        let idx = i * blocks.len() / picked;
        let reader = sys.jen_workers[0].datanode();
        let bytes = sys
            .hdfs
            .read()
            .read_block_into(blocks[idx].id, reader, &sys.metrics)?;
        let decoded = decode(meta.format, &meta.schema, &bytes, None)?;
        let mask = star.fact_pred.eval_predicate(&decoded.batch)?;
        let survivors = decoded.batch.filter(&mask)?.project(&star.fact_proj)?;
        for (axis, sketch) in sketches.iter_mut().enumerate() {
            for &key in survivors.column(star.fact_keys[axis])?.keys_i64()?.iter() {
                sketch.offer(key);
            }
        }
    }
    // every axis sees the same sampled rows; meter the sample once
    sys.metrics
        .add("multiway.salt.sampled_rows", sketches[0].total());
    let hot: Vec<HashSet<i64>> = sketches
        .into_iter()
        .map(|sketch| {
            let threshold = (sketch.total() / n as u64).max(MIN_HOT_COUNT);
            sketch
                .heavy_hitters(threshold)
                .into_iter()
                .map(|(key, _)| key)
                .collect()
        })
        .collect();
    sys.metrics.add(
        "multiway.salt.hot_keys",
        hot.iter().map(|h| h.len() as u64).sum(),
    );
    Ok(hot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::ops::AggSpec;

    fn star(k: usize) -> StarQuery {
        StarQuery {
            fact_table: "L".into(),
            fact_pred: Expr::col_le(1, 10),
            fact_proj: (0..=k).collect(),
            fact_keys: (0..k).collect(),
            dims: (0..k)
                .map(|i| DimQuery {
                    table: format!("D{i}"),
                    pred: Expr::col_le(1, 5),
                    proj: vec![0, 2],
                    key: 0,
                })
                .collect(),
            post_predicate: None,
            group_expr: Expr::col(k),
            aggs: vec![AggSpec::Count],
        }
    }

    #[test]
    fn validation_guards_shape() {
        star(2).validate().unwrap();
        let mut q = star(2);
        q.dims.clear();
        q.fact_keys.clear();
        assert!(q.validate().is_err(), "no dimensions");
        let mut q = star(2);
        q.fact_keys = vec![0];
        assert!(q.validate().is_err(), "key/dim count mismatch");
        let mut q = star(2);
        q.fact_keys[1] = 99;
        assert!(q.validate().is_err(), "fact key out of bounds");
        let mut q = star(2);
        q.dims[0].key = 7;
        assert!(q.validate().is_err(), "dim key out of bounds");
        let mut q = star(2);
        q.group_expr = Expr::col(q.joined_width());
        assert!(q.validate().is_err(), "group expr out of bounds");
        let mut q = star(2);
        q.aggs = vec![AggSpec::SumI64(q.joined_width())];
        assert!(q.validate().is_err(), "agg column out of bounds");
    }

    #[test]
    fn planner_parses_and_defaults() {
        assert_eq!(
            MultiwayPlanner::parse("Cascade"),
            Some(MultiwayPlanner::Cascade)
        );
        assert_eq!(
            MultiwayPlanner::parse(" hypercube "),
            Some(MultiwayPlanner::Hypercube)
        );
        assert_eq!(MultiwayPlanner::parse("auto"), Some(MultiwayPlanner::Auto));
        assert_eq!(MultiwayPlanner::parse("nope"), None);
        assert_eq!(MultiwayPlanner::Hypercube.name(), "hypercube");
    }

    #[test]
    fn physical_map_inverts_the_prefix_stack() {
        // k = 2, fact width 3 (2 FKs + group), dim width 2. Join order
        // [1, 0] → physical layout dim0' ++ dim1' ++ fact'.
        let q = star(2);
        let map = physical_map(&q, &[1, 0]);
        // canonical fact cols 0..3 → physical 4..7
        assert_eq!(&map[0..3], &[4, 5, 6]);
        // canonical dim0 cols → physical 0..2 (joined last, so outermost)
        assert_eq!(&map[3..5], &[0, 1]);
        // canonical dim1 cols → physical 2..4
        assert_eq!(&map[5..7], &[2, 3]);
        // identity order stacks the other way round
        let map = physical_map(&q, &[0, 1]);
        assert_eq!(&map[0..3], &[4, 5, 6]);
        assert_eq!(&map[3..5], &[2, 3]);
        assert_eq!(&map[5..7], &[0, 1]);
        // a map is a permutation of the joined width
        let mut sorted = map.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..q.joined_width()).collect::<Vec<_>>());
    }

    #[test]
    fn remapped_aggs_follow_the_map() {
        let q = StarQuery {
            aggs: vec![AggSpec::Count, AggSpec::SumI64(4)],
            ..star(2)
        };
        let map = physical_map(&q, &[1, 0]);
        assert_eq!(
            remap_aggs(&q, &[1, 0]),
            vec![AggSpec::Count, AggSpec::SumI64(map[4])]
        );
    }
}
