//! The hybrid query model.
//!
//! A [`HybridQuery`] captures the paper's workload shape (§2):
//!
//! ```sql
//! SELECT g(L.cols), agg(...)
//! FROM T (in the EDW), L (on HDFS)
//! WHERE p_T(T) AND p_L(L)             -- local predicates
//!   AND T.k = L.k                     -- equi-join
//!   AND q(T, L)                       -- post-join predicate
//! GROUP BY g(L.cols)
//! ```
//!
//! Expressions about joined rows (`post_predicate`, `group_expr`) are
//! written against the **canonical joined schema** `T' ++ L'` (the projected
//! database columns first, then the projected HDFS columns). Individual
//! algorithms may physically produce `L' ++ T'` (the HDFS-side joins build
//! their hash table on the HDFS data); [`HybridQuery::remap_joined_expr`]
//! rewrites canonical expressions for that layout so every algorithm
//! computes the same answer.

use hybrid_bloom::BloomParams;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::expr::Expr;
use hybrid_common::ops::AggSpec;

/// A two-table hybrid-warehouse query.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridQuery {
    /// Name of the table in the parallel database (`T`).
    pub db_table: String,
    /// Name of the table on HDFS (`L`).
    pub hdfs_table: String,
    /// Local predicate over `T`'s base schema.
    pub db_pred: Expr,
    /// Columns of `T` kept after projection (base-schema indexes). Must
    /// include the join key and everything `post_predicate`/`group_expr`
    /// touch on the database side.
    pub db_proj: Vec<usize>,
    /// Position of the join key **within `db_proj`**.
    pub db_key: usize,
    /// Local predicate over `L`'s base schema.
    pub hdfs_pred: Expr,
    /// Columns of `L` kept after projection (base-schema indexes).
    pub hdfs_proj: Vec<usize>,
    /// Position of the join key **within `hdfs_proj`**.
    pub hdfs_key: usize,
    /// Residual predicate over the canonical joined schema `T' ++ L'`.
    pub post_predicate: Option<Expr>,
    /// Group-by key expression over the canonical joined schema.
    pub group_expr: Expr,
    /// Aggregates over the canonical joined schema.
    pub aggs: Vec<AggSpec>,
    /// Bloom filter geometry used by the `(BF)` algorithm variants.
    pub bloom: BloomParams,
}

impl HybridQuery {
    /// Sanity-check the query against itself (projection/key bounds).
    pub fn validate(&self) -> Result<()> {
        if self.db_proj.is_empty() || self.hdfs_proj.is_empty() {
            return Err(HybridError::config("projections must be non-empty"));
        }
        if self.db_key >= self.db_proj.len() {
            return Err(HybridError::config(format!(
                "db_key {} out of bounds for projection of {}",
                self.db_key,
                self.db_proj.len()
            )));
        }
        if self.hdfs_key >= self.hdfs_proj.len() {
            return Err(HybridError::config(format!(
                "hdfs_key {} out of bounds for projection of {}",
                self.hdfs_key,
                self.hdfs_proj.len()
            )));
        }
        let joined_width = self.db_proj.len() + self.hdfs_proj.len();
        for agg in &self.aggs {
            let col = match *agg {
                AggSpec::Count => None,
                AggSpec::SumI64(c) | AggSpec::MinI64(c) | AggSpec::MaxI64(c) => Some(c),
            };
            if let Some(c) = col {
                if c >= joined_width {
                    return Err(HybridError::config(format!(
                        "aggregate references column {c}, joined width is {joined_width}"
                    )));
                }
            }
        }
        for (name, expr) in [
            ("post_predicate", self.post_predicate.as_ref()),
            ("group_expr", Some(&self.group_expr)),
        ] {
            if let Some(e) = expr {
                if let Some(&max) = e.referenced_columns().iter().next_back() {
                    if max >= joined_width {
                        return Err(HybridError::config(format!(
                            "{name} references column {max}, joined width is {joined_width}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Base-schema column index of `T`'s join key.
    pub fn db_key_base(&self) -> usize {
        self.db_proj[self.db_key]
    }

    /// Base-schema column index of `L`'s join key.
    pub fn hdfs_key_base(&self) -> usize {
        self.hdfs_proj[self.hdfs_key]
    }

    /// Rewrite a canonical (`T' ++ L'`) expression for the physical layout
    /// `L' ++ T'` produced by HDFS-side joins that build on the HDFS data.
    pub fn remap_joined_expr(&self, expr: &Expr) -> Expr {
        let dbw = self.db_proj.len();
        let hw = self.hdfs_proj.len();
        expr.remap_columns(&|c| {
            if c < dbw {
                Some(c + hw) // database column: shifted past the HDFS columns
            } else if c < dbw + hw {
                Some(c - dbw) // HDFS column: moved to the front
            } else {
                None
            }
        })
        .expect("validated expressions stay in bounds")
    }

    /// `post_predicate` for the `L' ++ T'` layout.
    pub fn post_predicate_hdfs_layout(&self) -> Option<Expr> {
        self.post_predicate
            .as_ref()
            .map(|p| self.remap_joined_expr(p))
    }

    /// `group_expr` for the `L' ++ T'` layout.
    pub fn group_expr_hdfs_layout(&self) -> Expr {
        self.remap_joined_expr(&self.group_expr)
    }

    /// Aggregates for the `L' ++ T'` layout: column-bearing aggregate
    /// functions are rewritten through the same side swap as the
    /// expressions. (COUNT carries no column and is unchanged — which is
    /// why the paper's count(*)-only workload can never expose a layout
    /// mix-up; the multi-aggregate integration test can.)
    pub fn aggs_hdfs_layout(&self) -> Vec<AggSpec> {
        let dbw = self.db_proj.len();
        let hw = self.hdfs_proj.len();
        let remap = |c: usize| if c < dbw { c + hw } else { c - dbw };
        self.aggs
            .iter()
            .map(|a| match *a {
                AggSpec::Count => AggSpec::Count,
                AggSpec::SumI64(c) => AggSpec::SumI64(remap(c)),
                AggSpec::MinI64(c) => AggSpec::MinI64(remap(c)),
                AggSpec::MaxI64(c) => AggSpec::MaxI64(remap(c)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::{Batch, Column};
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;

    fn query() -> HybridQuery {
        HybridQuery {
            db_table: "T".into(),
            hdfs_table: "L".into(),
            db_pred: Expr::col_le(2, 10),
            db_proj: vec![1, 4], // joinKey, date
            db_key: 0,
            hdfs_pred: Expr::col_le(1, 10),
            hdfs_proj: vec![0, 3], // joinKey, date
            hdfs_key: 0,
            post_predicate: Some(Expr::col(1).sub(Expr::col(3)).ge(Expr::lit_i64(0))),
            group_expr: Expr::col(2),
            aggs: vec![hybrid_common::ops::AggSpec::Count],
            bloom: BloomParams::new(1 << 10, 2).unwrap(),
        }
    }

    #[test]
    fn valid_query_passes() {
        query().validate().unwrap();
    }

    #[test]
    fn key_bounds_checked() {
        let mut q = query();
        q.db_key = 5;
        assert!(q.validate().is_err());
        let mut q = query();
        q.hdfs_key = 2;
        assert!(q.validate().is_err());
    }

    #[test]
    fn joined_expr_bounds_checked() {
        let mut q = query();
        q.group_expr = Expr::col(4); // joined width is 4 (cols 0..=3)
        assert!(q.validate().is_err());
        let mut q = query();
        q.post_predicate = Some(Expr::col_le(9, 1));
        assert!(q.validate().is_err());
    }

    #[test]
    fn empty_projection_rejected() {
        let mut q = query();
        q.db_proj.clear();
        assert!(q.validate().is_err());
    }

    #[test]
    fn base_key_resolution() {
        let q = query();
        assert_eq!(q.db_key_base(), 1);
        assert_eq!(q.hdfs_key_base(), 0);
    }

    #[test]
    fn remap_swaps_sides_consistently() {
        let q = query();
        // Build a canonical T'++L' batch and its swapped L'++T' twin; the
        // remapped expression over the swapped layout must equal the
        // canonical expression over the canonical layout.
        let canonical = Batch::new(
            Schema::from_pairs(&[
                ("t_k", DataType::I32),
                ("t_d", DataType::I32),
                ("l_k", DataType::I32),
                ("l_d", DataType::I32),
            ]),
            vec![
                Column::I32(vec![1, 2]),
                Column::I32(vec![10, 5]),
                Column::I32(vec![1, 2]),
                Column::I32(vec![9, 7]),
            ],
        )
        .unwrap();
        let swapped = canonical.project(&[2, 3, 0, 1]).unwrap();
        let canon_pred = q.post_predicate.clone().unwrap();
        let remapped = q.post_predicate_hdfs_layout().unwrap();
        assert_eq!(
            canon_pred.eval_predicate(&canonical).unwrap(),
            remapped.eval_predicate(&swapped).unwrap()
        );
        // group expr: canonical col 2 (l_k) → swapped col 0
        assert_eq!(
            q.group_expr.eval_i64(&canonical).unwrap(),
            q.group_expr_hdfs_layout().eval_i64(&swapped).unwrap()
        );
    }
}
