//! The parallel database cluster: table loading, global Bloom filter
//! construction, and the distributed join + aggregation executor.

use crate::optimizer::{self, DbJoinChoice, DbJoinSpec};
use crate::worker::DbWorker;
use hybrid_bloom::{BloomFilter, BloomParams};
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::expr::Expr;
use hybrid_common::hash::db_partition;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::metrics::Metrics;
use hybrid_common::ops::{partition_by_key, HashAggregator, HashJoiner};

/// Intra-DB traffic uses the same metric names as `hybrid_net::LinkClass::
/// IntraDb` so the cost model sees one coherent `net.*` namespace, even
/// though in-database exchanges never leave this crate.
const INTRA_DB_BYTES: &str = "net.intra_db.bytes";
const INTRA_DB_TUPLES: &str = "net.intra_db.tuples";

/// The shared-nothing parallel database.
#[derive(Debug)]
pub struct DbCluster {
    workers: Vec<DbWorker>,
    metrics: Metrics,
}

impl DbCluster {
    /// Create a cluster of `num_workers` database agents (the paper runs 30,
    /// six per physical server).
    pub fn new(num_workers: usize, metrics: Metrics) -> Result<DbCluster> {
        if num_workers == 0 {
            return Err(HybridError::config("database needs at least one worker"));
        }
        Ok(DbCluster {
            workers: (0..num_workers)
                .map(|i| DbWorker::new(DbWorkerId(i), metrics.clone()))
                .collect(),
            metrics,
        })
    }

    /// A clone of this cluster that shares the loaded partitions and
    /// indexes (cheap `Arc` bumps per table) but meters every scan, Bloom
    /// build and intra-DB exchange into `metrics`. The query service hands
    /// one to each in-flight query so concurrent executions never
    /// interleave counters.
    pub fn session(&self, metrics: Metrics) -> DbCluster {
        DbCluster {
            workers: self
                .workers
                .iter()
                .map(|w| w.session(metrics.clone()))
                .collect(),
            metrics,
        }
    }

    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn worker(&self, i: usize) -> &DbWorker {
        &self.workers[i]
    }

    /// Load a table, hash-distributing rows on `dist_col` with the DB's
    /// internal partitioning hash (the paper distributes `T` on `uniqKey`).
    pub fn load_table(&mut self, name: &str, dist_col: usize, data: Batch) -> Result<()> {
        let parts = partition_by_key(&data, dist_col, self.workers.len(), db_partition)?;
        for (w, p) in self.workers.iter_mut().zip(parts) {
            w.store_partition(name, p);
        }
        Ok(())
    }

    /// Build a covering index on every worker's partition of `table`.
    pub fn create_index(&mut self, table: &str, base_cols: &[usize]) -> Result<()> {
        for w in &mut self.workers {
            w.add_index(table, base_cols)?;
        }
        Ok(())
    }

    /// Step 1 of every algorithm: apply local predicates + projection on
    /// each worker, yielding `T'` as one batch per worker.
    pub fn scan_filter_project(
        &self,
        table: &str,
        pred: &Expr,
        proj: &[usize],
    ) -> Result<Vec<Batch>> {
        self.workers
            .iter()
            .map(|w| w.scan_filter_project(table, pred, proj))
            .collect()
    }

    /// The full `cal_filter` → `combine_filter` pipeline (§4.1.1): each
    /// worker builds a local Bloom filter over its surviving join keys; all
    /// local filters travel to one worker (metered on the DB interconnect)
    /// and are OR-merged into the global `BF_DB`.
    pub fn build_global_bloom(
        &self,
        table: &str,
        pred: &Expr,
        key_col: usize,
        params: BloomParams,
    ) -> Result<BloomFilter> {
        let mut global = BloomFilter::new(params);
        for (i, w) in self.workers.iter().enumerate() {
            let local = w.build_local_bloom(table, pred, key_col, BloomFilter::new(params))?;
            if i != 0 {
                // local filters are sent to a single worker (worker 0)
                use hybrid_bloom::ApproxMembership;
                self.metrics.add(INTRA_DB_BYTES, local.wire_bytes() as u64);
            }
            global.merge(&local)?;
        }
        Ok(global)
    }

    /// The DB-side final join: join per-worker `left` (database data,
    /// usually `T'`) with per-worker `right` (the HDFS data landed on each
    /// worker), then apply the post-join predicate, group and aggregate.
    ///
    /// The physical plan (broadcast either side or repartition both) is
    /// chosen by [`optimizer::choose`]; all data movement between workers is
    /// metered as intra-DB traffic. Returns the final result (computed on
    /// worker 0) and the chosen plan.
    pub fn join_and_aggregate(
        &self,
        left: &[Batch],
        right: &[Batch],
        spec: &DbJoinSpec,
    ) -> Result<(Batch, DbJoinChoice)> {
        let n = self.workers.len();
        if left.len() != n || right.len() != n {
            return Err(HybridError::exec(format!(
                "join inputs have {} / {} partitions for {n} workers",
                left.len(),
                right.len()
            )));
        }
        let left_bytes: usize = left.iter().map(Batch::serialized_bytes).sum();
        let right_bytes: usize = right.iter().map(Batch::serialized_bytes).sum();
        let choice = optimizer::choose(left_bytes, right_bytes, n);

        let (local_left, local_right): (Vec<Batch>, Vec<Batch>) = match choice {
            DbJoinChoice::BroadcastLeft => {
                self.meter_broadcast(left);
                let all_left = concat_all(left)?;
                (vec![all_left; n], right.to_vec())
            }
            DbJoinChoice::BroadcastRight => {
                self.meter_broadcast(right);
                let all_right = concat_all(right)?;
                (left.to_vec(), vec![all_right; n])
            }
            DbJoinChoice::Repartition => {
                let l = self.repartition(left, spec.left_key)?;
                let r = self.repartition(right, spec.right_key)?;
                (l, r)
            }
        };

        // Per-worker: build on left, probe with right (output = left ++ right),
        // residual predicate, partial aggregation.
        let mut partials: Vec<Batch> = Vec::with_capacity(n);
        for w in 0..n {
            let mut joiner = HashJoiner::new(local_left[w].schema().clone(), spec.left_key);
            joiner.build(local_left[w].clone())?;
            let joined = joiner.probe(&local_right[w], spec.right_key)?;
            let joined = match &spec.post_predicate {
                Some(p) => {
                    let mask = p.eval_predicate(&joined)?;
                    joined.filter(&mask)?
                }
                None => joined,
            };
            let groups = spec.group_expr.eval_i64(&joined)?;
            let mut agg = HashAggregator::new(spec.aggs.clone());
            agg.update(&groups, &joined)?;
            partials.push(agg.finish());
        }

        // Final aggregation on worker 0; other workers ship their partials.
        let mut final_agg = HashAggregator::new(spec.aggs.clone());
        for (w, partial) in partials.iter().enumerate() {
            if w != 0 {
                self.metrics
                    .add(INTRA_DB_BYTES, partial.serialized_bytes() as u64);
                self.metrics.add(INTRA_DB_TUPLES, partial.num_rows() as u64);
            }
            final_agg.merge_partial(partial)?;
        }
        Ok((final_agg.finish(), choice))
    }

    fn meter_broadcast(&self, side: &[Batch]) {
        let n = self.workers.len() as u64;
        for b in side {
            self.metrics
                .add(INTRA_DB_BYTES, b.serialized_bytes() as u64 * (n - 1));
            self.metrics
                .add(INTRA_DB_TUPLES, b.num_rows() as u64 * (n - 1));
        }
    }

    /// Hash-repartition per-worker batches on `key_col`, metering rows that
    /// change workers.
    fn repartition(&self, side: &[Batch], key_col: usize) -> Result<Vec<Batch>> {
        let n = self.workers.len();
        let mut received: Vec<Vec<Batch>> = vec![Vec::with_capacity(n); n];
        for (src, batch) in side.iter().enumerate() {
            let parts = partition_by_key(batch, key_col, n, db_partition)?;
            for (dst, part) in parts.into_iter().enumerate() {
                if dst != src && part.num_rows() > 0 {
                    self.metrics
                        .add(INTRA_DB_BYTES, part.serialized_bytes() as u64);
                    self.metrics.add(INTRA_DB_TUPLES, part.num_rows() as u64);
                }
                received[dst].push(part);
            }
        }
        side.iter()
            .zip(received)
            .map(|(b, parts)| Batch::concat(b.schema().clone(), &parts))
            .collect()
    }
}

fn concat_all(side: &[Batch]) -> Result<Batch> {
    let schema = side
        .first()
        .ok_or_else(|| HybridError::exec("cannot concat zero partitions"))?
        .schema()
        .clone();
    Batch::concat(schema, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::ops::AggSpec;
    use hybrid_common::schema::Schema;

    fn t_schema() -> Schema {
        Schema::from_pairs(&[
            ("uniqKey", DataType::I64),
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
        ])
    }

    fn t_data(rows: usize) -> Batch {
        Batch::new(
            t_schema(),
            vec![
                Column::I64((0..rows as i64).collect()),
                Column::I32((0..rows).map(|i| (i % 20) as i32).collect()),
                Column::I32((0..rows).map(|i| (i % 100) as i32).collect()),
            ],
        )
        .unwrap()
    }

    fn cluster(n: usize) -> DbCluster {
        let mut c = DbCluster::new(n, Metrics::new()).unwrap();
        c.load_table("T", 0, t_data(500)).unwrap();
        c
    }

    #[test]
    fn load_partitions_all_rows() {
        let c = cluster(4);
        let total: usize = (0..4)
            .map(|i| c.worker(i).partition("T").unwrap().num_rows())
            .sum();
        assert_eq!(total, 500);
        // distribution is on uniqKey: roughly even
        for i in 0..4 {
            let r = c.worker(i).partition("T").unwrap().num_rows();
            assert!(r > 60 && r < 190, "worker {i} has {r} rows");
        }
    }

    #[test]
    fn scan_filter_project_runs_per_worker() {
        let c = cluster(3);
        let pred = Expr::col_le(2, 49); // half of corPred values
        let parts = c.scan_filter_project("T", &pred, &[1]).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, 250);
    }

    #[test]
    fn global_bloom_covers_all_surviving_keys_and_meters_merge() {
        let m = Metrics::new();
        let mut c = DbCluster::new(5, m.clone()).unwrap();
        c.load_table("T", 0, t_data(500)).unwrap();
        let pred = Expr::col_le(2, 19); // keys 0..20 survive via corPred=i%100
        let params = BloomParams::new(1 << 14, 2).unwrap();
        let bf = c.build_global_bloom("T", &pred, 1, params).unwrap();
        use hybrid_bloom::ApproxMembership;
        for k in 0..20i64 {
            assert!(bf.may_contain(k));
        }
        // 4 local filters shipped to worker 0
        assert_eq!(m.get("net.intra_db.bytes"), 4 * (8 + (1 << 14) / 8) as u64);
    }

    fn spec() -> DbJoinSpec {
        DbJoinSpec {
            left_key: 1,
            right_key: 0,
            post_predicate: None,
            // group by the right side's second column (offset: left has 3 cols)
            group_expr: Expr::col(4),
            aggs: vec![AggSpec::Count],
        }
    }

    fn right_side(c: &DbCluster, keys: &[i32]) -> Vec<Batch> {
        // distribute `keys` rows arbitrarily across workers (round-robin)
        let schema = Schema::from_pairs(&[("k", DataType::I32), ("g", DataType::I32)]);
        let n = c.num_workers();
        let mut per: Vec<(Vec<i32>, Vec<i32>)> = vec![(vec![], vec![]); n];
        for (i, &k) in keys.iter().enumerate() {
            per[i % n].0.push(k);
            per[i % n].1.push(k % 3);
        }
        per.into_iter()
            .map(|(k, g)| Batch::new(schema.clone(), vec![Column::I32(k), Column::I32(g)]).unwrap())
            .collect()
    }

    #[test]
    fn join_and_aggregate_matches_single_node_reference() {
        let c = cluster(4);
        let pred = Expr::col_le(2, 99); // everything
        let left = c.scan_filter_project("T", &pred, &[0, 1, 2]).unwrap();
        let right = right_side(&c, &[0, 1, 2, 3, 0, 0, 19, 19]);
        let (result, _) = c.join_and_aggregate(&left, &right, &spec()).unwrap();

        // reference: single-worker cluster computes the same query
        let mut c1 = DbCluster::new(1, Metrics::new()).unwrap();
        c1.load_table("T", 0, t_data(500)).unwrap();
        let left1 = c1.scan_filter_project("T", &pred, &[0, 1, 2]).unwrap();
        let right1 = right_side(&c1, &[0, 1, 2, 3, 0, 0, 19, 19]);
        let (expected, _) = c1.join_and_aggregate(&left1, &right1, &spec()).unwrap();

        assert_eq!(result, expected);
        assert!(result.num_rows() > 0);
    }

    #[test]
    fn small_right_side_gets_broadcast() {
        let c = cluster(4);
        let left = c
            .scan_filter_project("T", &Expr::col_le(2, 99), &[0, 1, 2])
            .unwrap();
        let right = right_side(&c, &[1, 2]);
        let (_, choice) = c.join_and_aggregate(&left, &right, &spec()).unwrap();
        assert_eq!(choice, DbJoinChoice::BroadcastRight);
    }

    #[test]
    fn comparable_sides_get_repartitioned_and_metered() {
        let m = Metrics::new();
        let mut c = DbCluster::new(4, m.clone()).unwrap();
        c.load_table("T", 0, t_data(500)).unwrap();
        let left = c
            .scan_filter_project("T", &Expr::col_le(2, 99), &[0, 1, 2])
            .unwrap();
        let keys: Vec<i32> = (0..400).map(|i| i % 20).collect();
        let right = right_side(&c, &keys);
        m.reset();
        let (_, choice) = c.join_and_aggregate(&left, &right, &spec()).unwrap();
        assert_eq!(choice, DbJoinChoice::Repartition);
        assert!(m.get("net.intra_db.tuples") > 0);
    }

    #[test]
    fn post_predicate_filters_joined_rows() {
        let c = cluster(2);
        let left = c
            .scan_filter_project("T", &Expr::col_le(2, 99), &[0, 1, 2])
            .unwrap();
        let right = right_side(&c, &[0, 1]);
        let mut s = spec();
        // impossible predicate: joined uniqKey (col 0) < 0
        s.post_predicate = Some(Expr::col(0).le(Expr::lit_i64(-1)));
        let (result, _) = c.join_and_aggregate(&left, &right, &s).unwrap();
        assert_eq!(result.num_rows(), 0);
    }

    #[test]
    fn partition_count_mismatch_errors() {
        let c = cluster(3);
        let left = c
            .scan_filter_project("T", &Expr::col_le(2, 99), &[0, 1, 2])
            .unwrap();
        let right = right_side(&c, &[1]);
        assert!(c.join_and_aggregate(&left[..2], &right, &spec()).is_err());
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(DbCluster::new(0, Metrics::new()).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::ops::AggSpec;
    use hybrid_common::schema::Schema;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The distributed join + aggregation is invariant to the worker
        /// count: any cluster size produces the single-worker answer.
        #[test]
        fn join_result_invariant_to_cluster_size(
            t_keys in proptest::collection::vec(0i32..12, 1..40),
            r_keys in proptest::collection::vec(0i32..12, 0..40),
            workers in 2usize..6,
        ) {
            let t_schema = Schema::from_pairs(&[
                ("uniqKey", DataType::I64),
                ("joinKey", DataType::I32),
            ]);
            let t_data = Batch::new(
                t_schema,
                vec![
                    Column::I64((0..t_keys.len() as i64).collect()),
                    Column::I32(t_keys.clone()),
                ],
            )
            .unwrap();
            let r_schema = Schema::from_pairs(&[("k", DataType::I32), ("g", DataType::I32)]);
            let make_right = |n: usize| -> Vec<Batch> {
                // deal rows round-robin over n workers
                let mut per: Vec<(Vec<i32>, Vec<i32>)> = vec![(vec![], vec![]); n];
                for (i, &k) in r_keys.iter().enumerate() {
                    per[i % n].0.push(k);
                    per[i % n].1.push(k % 3);
                }
                per.into_iter()
                    .map(|(k, g)| {
                        Batch::new(r_schema.clone(), vec![Column::I32(k), Column::I32(g)])
                            .unwrap()
                    })
                    .collect()
            };
            let spec = DbJoinSpec {
                left_key: 1,
                right_key: 0,
                post_predicate: None,
                group_expr: Expr::col(3),
                aggs: vec![AggSpec::Count],
            };

            let run_with = |n: usize| {
                let mut c = DbCluster::new(n, Metrics::new()).unwrap();
                c.load_table("T", 0, t_data.clone()).unwrap();
                let left = c
                    .scan_filter_project("T", &Expr::col_le(1, 100), &[0, 1])
                    .unwrap();
                let spec = DbJoinSpec { left_key: 1, ..spec.clone() };
                c.join_and_aggregate(&left, &make_right(n), &spec).unwrap().0
            };

            let reference = run_with(1);
            let distributed = run_with(workers);
            prop_assert_eq!(reference, distributed);
        }
    }
}
