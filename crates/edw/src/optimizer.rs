//! The in-database join optimizer.
//!
//! For the DB-side join the paper relies on the warehouse's own optimizer:
//! "After the filtered HDFS data is brought into the database, it is joined
//! with the database data using the join algorithm (broadcast or
//! repartition) chosen by the query optimizer" (§3.1). This module is that
//! chooser: a volume-based cost comparison of the three physical plans.

use hybrid_common::expr::Expr;
use hybrid_common::ops::AggSpec;

/// Physical plan for the in-database distributed join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbJoinChoice {
    /// Replicate the left input on every worker.
    BroadcastLeft,
    /// Replicate the right input on every worker.
    BroadcastRight,
    /// Hash-repartition both inputs on the join key.
    Repartition,
}

/// Logical description of the in-database join + aggregation.
///
/// The joined schema seen by `post_predicate` and `group_expr` is
/// `left ++ right` (left columns first), regardless of the physical plan.
#[derive(Debug, Clone)]
pub struct DbJoinSpec {
    /// Join key column in the left input.
    pub left_key: usize,
    /// Join key column in the right input.
    pub right_key: usize,
    /// Residual predicate evaluated on joined rows (e.g. the date window).
    pub post_predicate: Option<Expr>,
    /// Group-by key expression over joined rows.
    pub group_expr: Expr,
    /// Aggregates over joined rows.
    pub aggs: Vec<AggSpec>,
}

/// Pick the cheapest plan by bytes moved across the DB interconnect.
///
/// With `n` workers holding roughly even shares:
/// * broadcasting side `S` ships `bytes(S) × (n-1)` (every worker sends its
///   piece to the `n-1` others);
/// * repartitioning ships `(bytes(L)+bytes(R)) × (n-1)/n` (each row moves
///   unless it already lives on its hash destination).
pub fn choose(left_bytes: usize, right_bytes: usize, num_workers: usize) -> DbJoinChoice {
    if num_workers <= 1 {
        // everything is local; broadcasting the smaller side is a no-op plan
        return DbJoinChoice::Repartition;
    }
    let n = num_workers as f64;
    let bl = left_bytes as f64 * (n - 1.0);
    let br = right_bytes as f64 * (n - 1.0);
    let rp = (left_bytes + right_bytes) as f64 * (n - 1.0) / n;
    if bl <= br && bl <= rp {
        DbJoinChoice::BroadcastLeft
    } else if br <= bl && br <= rp {
        DbJoinChoice::BroadcastRight
    } else {
        DbJoinChoice::Repartition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_left_is_broadcast() {
        // left is 1/100 of right: broadcasting left beats repartition
        assert_eq!(choose(1_000, 100_000, 30), DbJoinChoice::BroadcastLeft);
    }

    #[test]
    fn tiny_right_is_broadcast() {
        assert_eq!(choose(100_000, 1_000, 30), DbJoinChoice::BroadcastRight);
    }

    #[test]
    fn comparable_sizes_repartition() {
        assert_eq!(choose(100_000, 100_000, 30), DbJoinChoice::Repartition);
        assert_eq!(choose(100_000, 60_000, 30), DbJoinChoice::Repartition);
    }

    #[test]
    fn crossover_at_cost_equality() {
        // broadcast-left cost = L(n-1); repartition = (L+R)(n-1)/n
        // equal when L·n = L + R  ⇔  R = L(n-1)
        let n = 10;
        let l = 1_000usize;
        let r_equal = l * (n - 1);
        assert_eq!(choose(l, r_equal + 1000, n), DbJoinChoice::BroadcastLeft);
        assert_eq!(choose(l, r_equal - 1000, n), DbJoinChoice::Repartition);
    }

    #[test]
    fn single_worker_degenerates() {
        assert_eq!(choose(5, 5, 1), DbJoinChoice::Repartition);
    }
}
