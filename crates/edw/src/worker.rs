//! One shared-nothing database worker (a DB2 DPF agent).

use crate::index::CoveringIndex;
use hybrid_bloom::BloomFilter;
use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::expr::Expr;
use hybrid_common::ids::DbWorkerId;
use hybrid_common::metrics::Metrics;
use std::collections::HashMap;
use std::sync::Arc;

/// A database worker: owns one hash partition of every loaded table plus
/// any covering indexes built over them.
///
/// Partitions and indexes are stored behind `Arc` so that a service-layer
/// *session* ([`DbWorker::session`]) can share the loaded data with the
/// root worker while metering into its own registry — loading a table is
/// expensive, cloning a worker for a session is a handful of refcounts.
#[derive(Debug)]
pub struct DbWorker {
    id: DbWorkerId,
    /// table name -> this worker's partition
    partitions: HashMap<String, Arc<Batch>>,
    /// table name -> indexes over the local partition
    indexes: HashMap<String, Vec<Arc<CoveringIndex>>>,
    metrics: Metrics,
}

impl DbWorker {
    pub fn new(id: DbWorkerId, metrics: Metrics) -> DbWorker {
        DbWorker {
            id,
            partitions: HashMap::new(),
            indexes: HashMap::new(),
            metrics,
        }
    }

    /// A clone of this worker that shares its (immutable) partitions and
    /// indexes but meters all access into `metrics` instead of the root
    /// registry.
    pub fn session(&self, metrics: Metrics) -> DbWorker {
        DbWorker {
            id: self.id,
            partitions: self.partitions.clone(),
            indexes: self.indexes.clone(),
            metrics,
        }
    }

    pub fn id(&self) -> DbWorkerId {
        self.id
    }

    pub(crate) fn store_partition(&mut self, table: &str, partition: Batch) {
        self.partitions
            .insert(table.to_string(), Arc::new(partition));
        self.indexes.remove(table); // stale indexes die with the old data
    }

    pub fn partition(&self, table: &str) -> Result<&Batch> {
        self.partitions
            .get(table)
            .map(Arc::as_ref)
            .ok_or_else(|| HybridError::exec(format!("{}: no table {table:?}", self.id)))
    }

    pub(crate) fn add_index(&mut self, table: &str, base_cols: &[usize]) -> Result<()> {
        let partition = self.partition(table)?.clone();
        let idx = CoveringIndex::build(&partition, base_cols)?;
        self.indexes
            .entry(table.to_string())
            .or_default()
            .push(Arc::new(idx));
        Ok(())
    }

    fn indexes_for(&self, table: &str) -> &[Arc<CoveringIndex>] {
        self.indexes.get(table).map_or(&[], Vec::as_slice)
    }

    /// Pick an index that covers `needed` columns, preferring one whose
    /// leading column is used by a `col <= bound` conjunct of `pred` (so the
    /// prefix range access prunes work).
    fn choose_index(
        &self,
        table: &str,
        needed: &[usize],
        lead_candidates: &[usize],
    ) -> Option<&CoveringIndex> {
        let mut best: Option<&CoveringIndex> = None;
        for idx in self.indexes_for(table).iter().map(Arc::as_ref) {
            if !idx.covers(needed.iter().copied()) {
                continue;
            }
            let lead_is_pruned = lead_candidates.contains(&idx.base_cols()[0]);
            match best {
                None => best = Some(idx),
                Some(b) => {
                    let b_pruned = lead_candidates.contains(&b.base_cols()[0]);
                    // prefer prunable lead, then narrower index
                    if (lead_is_pruned && !b_pruned)
                        || (lead_is_pruned == b_pruned
                            && idx.base_cols().len() < b.base_cols().len())
                    {
                        best = Some(idx);
                    }
                }
            }
        }
        best
    }

    /// Evaluate `pred` over the local partition of `table` and project to
    /// `proj` (base-table column indexes). Uses an index-only plan when a
    /// covering index exists; falls back to a full partition scan.
    ///
    /// Metering: `db.scan.rows` / `db.scan.bytes` for base-table access,
    /// `db.index.rows` / `db.index.bytes` for index-only access.
    pub fn scan_filter_project(&self, table: &str, pred: &Expr, proj: &[usize]) -> Result<Batch> {
        let needed: Vec<usize> = pred
            .referenced_columns()
            .into_iter()
            .chain(proj.iter().copied())
            .collect();
        let lead_candidates = leading_le_columns(pred);
        if let Some(idx) = self.choose_index(table, &needed, &lead_candidates) {
            let remapped = idx
                .remap(pred)
                .expect("covering index covers predicate columns");
            // prefix-prune when the lead column has a `<= bound` conjunct
            let lead_base = idx.base_cols()[0];
            let (rows_touched, candidates) = match le_bound_for(pred, lead_base) {
                Some(bound) => idx.prefix_le(bound)?,
                None => (idx.len(), idx.full().clone()),
            };
            self.metrics.add("db.index.rows", rows_touched as u64);
            self.metrics
                .add("db.index.bytes", candidates.serialized_bytes() as u64);
            let mask = remapped.eval_predicate(&candidates)?;
            let filtered = candidates.filter(&mask)?;
            let index_proj: Vec<usize> = proj
                .iter()
                .map(|&c| idx.position_of(c).expect("covered"))
                .collect();
            return filtered.project(&index_proj);
        }

        let partition = self.partition(table)?;
        self.metrics
            .add("db.scan.rows", partition.num_rows() as u64);
        self.metrics
            .add("db.scan.bytes", partition.serialized_bytes() as u64);
        let mask = pred.eval_predicate(partition)?;
        partition.filter(&mask)?.project(proj)
    }

    /// The `cal_filter`/`get_filter` UDF pair: build this worker's local
    /// Bloom filter over the join keys that survive `pred`.
    pub fn build_local_bloom(
        &self,
        table: &str,
        pred: &Expr,
        key_col: usize,
        mut filter: BloomFilter,
    ) -> Result<BloomFilter> {
        let keys = self.scan_filter_project(table, pred, &[key_col])?;
        let col = keys.column(0)?;
        for row in 0..keys.num_rows() {
            filter.insert(col.key_at(row)?);
        }
        self.metrics
            .add("db.bloom.keys_inserted", keys.num_rows() as u64);
        Ok(filter)
    }
}

/// Columns `c` for which `pred` contains a top-level conjunct `Col(c) <= lit`.
fn leading_le_columns(pred: &Expr) -> Vec<usize> {
    pred.le_conjuncts().iter().map(|(c, _)| *c).collect()
}

/// The `<=` bound on `col` if one exists among the top-level conjuncts.
fn le_bound_for(pred: &Expr, col: usize) -> Option<i64> {
    pred.le_conjuncts()
        .into_iter()
        .find(|(c, _)| *c == col)
        .map(|(_, b)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_bloom::{ApproxMembership, BloomParams};
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;

    fn t_schema() -> Schema {
        Schema::from_pairs(&[
            ("uniqKey", DataType::I64),
            ("joinKey", DataType::I32),
            ("corPred", DataType::I32),
            ("indPred", DataType::I32),
        ])
    }

    fn t_partition() -> Batch {
        Batch::new(
            t_schema(),
            vec![
                Column::I64((0..100).collect()),
                Column::I32((0..100).map(|i| i % 10).collect()),
                Column::I32((0..100).map(|i| i % 50).collect()),
                Column::I32((0..100).map(|i| i % 4).collect()),
            ],
        )
        .unwrap()
    }

    fn worker(with_index: bool) -> (DbWorker, Metrics) {
        let m = Metrics::new();
        let mut w = DbWorker::new(DbWorkerId(0), m.clone());
        w.store_partition("T", t_partition());
        if with_index {
            w.add_index("T", &[2, 3, 1]).unwrap();
        }
        (w, m)
    }

    fn pred() -> Expr {
        // corPred <= 9 && indPred <= 1
        Expr::col_le(2, 9).and(Expr::col_le(3, 1))
    }

    #[test]
    fn scan_without_index_uses_table() {
        let (w, m) = worker(false);
        let out = w.scan_filter_project("T", &pred(), &[1]).unwrap();
        assert_eq!(m.get("db.scan.rows"), 100);
        assert_eq!(m.get("db.index.rows"), 0);
        assert!(out.num_rows() > 0);
        assert_eq!(out.schema().field(0).unwrap().name, "joinKey");
    }

    #[test]
    fn index_only_plan_touches_fewer_rows() {
        let (plain, _) = worker(false);
        let expected = plain.scan_filter_project("T", &pred(), &[1]).unwrap();

        let (w, m) = worker(true);
        let out = w.scan_filter_project("T", &pred(), &[1]).unwrap();
        assert_eq!(
            m.get("db.scan.rows"),
            0,
            "index-only plan must not scan the table"
        );
        // corPred <= 9 prunes to the sorted prefix: 20 of 100 rows
        assert_eq!(m.get("db.index.rows"), 20);
        // same multiset of join keys
        let mut a = out.column(0).unwrap().as_i32().unwrap().to_vec();
        let mut b = expected.column(0).unwrap().as_i32().unwrap().to_vec();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn uncovered_projection_falls_back_to_table_scan() {
        let (w, m) = worker(true);
        // uniqKey (col 0) is not in the index
        let out = w.scan_filter_project("T", &pred(), &[0]).unwrap();
        assert!(m.get("db.scan.rows") > 0);
        assert!(out.num_rows() > 0);
    }

    #[test]
    fn local_bloom_contains_exactly_surviving_keys() {
        let (w, _) = worker(true);
        let bf = w
            .build_local_bloom(
                "T",
                &pred(),
                1,
                BloomFilter::new(BloomParams::new(1 << 14, 2).unwrap()),
            )
            .unwrap();
        // surviving keys are those with corPred<=9 && indPred<=1; compute
        // directly from the data
        let p = t_partition();
        let mask = pred().eval_predicate(&p).unwrap();
        let keys = p.column(1).unwrap().as_i32().unwrap();
        for (row, &keep) in mask.iter().enumerate() {
            if keep {
                assert!(bf.may_contain(i64::from(keys[row])));
            }
        }
        assert!(bf.insertions() > 0);
    }

    #[test]
    fn missing_table_errors() {
        let (w, _) = worker(false);
        assert!(w.scan_filter_project("NOPE", &pred(), &[0]).is_err());
    }

    #[test]
    fn le_conjunct_extraction() {
        let p = pred();
        assert_eq!(leading_le_columns(&p), vec![2, 3]);
        assert_eq!(le_bound_for(&p, 2), Some(9));
        assert_eq!(le_bound_for(&p, 1), None);
        // a `>=` conjunct is not a prefix bound
        let q = Expr::col(2).ge(Expr::lit_i64(3));
        assert!(leading_le_columns(&q).is_empty());
    }

    #[test]
    fn store_partition_invalidates_indexes() {
        let (mut w, m) = worker(true);
        w.store_partition("T", t_partition());
        w.scan_filter_project("T", &pred(), &[1]).unwrap();
        assert!(
            m.get("db.scan.rows") > 0,
            "index should be gone after reload"
        );
    }
}
