//! Covering indexes with prefix range access.
//!
//! A covering index over base columns `(c0, c1, …)` materializes exactly
//! those columns, sorted by `c0`. Queries whose predicate and outputs touch
//! only indexed columns run **index-only**: they never read the base table,
//! and a leading-column `c0 <= bound` predicate prunes the scan to a sorted
//! prefix via binary search.
//!
//! The paper's experiment setup builds two such indexes on `T`:
//! `(corPred, indPred)` and `(corPred, indPred, joinKey)` — the latter
//! enabling the index-only Bloom filter build (§5, *Dataset*).

use hybrid_common::batch::Batch;
use hybrid_common::error::{HybridError, Result};
use hybrid_common::expr::Expr;

/// A covering index over one worker's partition of a table.
#[derive(Debug, Clone)]
pub struct CoveringIndex {
    /// The base-table column indexes this index covers, in index order.
    base_cols: Vec<usize>,
    /// The materialized index rows: projected to `base_cols`, sorted by the
    /// first indexed column.
    data: Batch,
}

impl CoveringIndex {
    /// Build an index on `base_cols` of `partition`. The first listed column
    /// must be an integer type (it is the sort key).
    pub fn build(partition: &Batch, base_cols: &[usize]) -> Result<CoveringIndex> {
        if base_cols.is_empty() {
            return Err(HybridError::config("index needs at least one column"));
        }
        let projected = partition.project(base_cols)?;
        // sort rows by leading column value
        let lead = projected.column(0)?;
        let mut order: Vec<u32> = (0..projected.num_rows() as u32).collect();
        let mut lead_vals = Vec::with_capacity(projected.num_rows());
        for row in 0..projected.num_rows() {
            lead_vals.push(lead.key_at(row)?);
        }
        order.sort_by_key(|&r| lead_vals[r as usize]);
        let data = projected.take(&order);
        Ok(CoveringIndex {
            base_cols: base_cols.to_vec(),
            data,
        })
    }

    /// The base columns covered, in index order.
    pub fn base_cols(&self) -> &[usize] {
        &self.base_cols
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.num_rows()
    }

    pub fn is_empty(&self) -> bool {
        self.data.num_rows() == 0
    }

    /// Does this index cover every column in `cols`?
    pub fn covers(&self, cols: impl IntoIterator<Item = usize>) -> bool {
        cols.into_iter().all(|c| self.base_cols.contains(&c))
    }

    /// Map a base-table column index to this index's column position.
    pub fn position_of(&self, base_col: usize) -> Option<usize> {
        self.base_cols.iter().position(|&c| c == base_col)
    }

    /// Rewrite a base-table expression onto the index schema, if covered.
    pub fn remap(&self, expr: &Expr) -> Option<Expr> {
        expr.remap_columns(&|c| self.position_of(c))
    }

    /// The sorted prefix of entries whose leading column is `<= bound`,
    /// found by binary search. Returns `(rows_touched, batch)` where
    /// `rows_touched` is the prefix length (the index access cost).
    pub fn prefix_le(&self, bound: i64) -> Result<(usize, Batch)> {
        let lead = self.data.column(0)?;
        // binary search for the first entry > bound
        let mut lo = 0usize;
        let mut hi = self.data.num_rows();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if lead.key_at(mid)? <= bound {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let rows: Vec<u32> = (0..lo as u32).collect();
        Ok((lo, self.data.take(&rows)))
    }

    /// The whole index as a batch (full index scan).
    pub fn full(&self) -> &Batch {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::batch::Column;
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;

    fn partition() -> Batch {
        Batch::new(
            Schema::from_pairs(&[
                ("uniqKey", DataType::I64),
                ("joinKey", DataType::I32),
                ("corPred", DataType::I32),
                ("indPred", DataType::I32),
            ]),
            vec![
                Column::I64(vec![100, 101, 102, 103, 104]),
                Column::I32(vec![7, 8, 9, 10, 11]),
                Column::I32(vec![50, 10, 30, 20, 40]),
                Column::I32(vec![1, 2, 3, 4, 5]),
            ],
        )
        .unwrap()
    }

    fn index() -> CoveringIndex {
        // (corPred, indPred, joinKey) — the paper's BF-building index
        CoveringIndex::build(&partition(), &[2, 3, 1]).unwrap()
    }

    #[test]
    fn sorted_by_leading_column() {
        let idx = index();
        assert_eq!(idx.len(), 5);
        let lead = idx.full().column(0).unwrap().as_i32().unwrap();
        assert_eq!(lead, &[10, 20, 30, 40, 50]);
        // joinKey travels with its row
        let jk = idx.full().column(2).unwrap().as_i32().unwrap();
        assert_eq!(jk, &[8, 10, 9, 11, 7]);
    }

    #[test]
    fn prefix_le_binary_search() {
        let idx = index();
        let (n, b) = idx.prefix_le(30).unwrap();
        assert_eq!(n, 3);
        assert_eq!(b.column(0).unwrap().as_i32().unwrap(), &[10, 20, 30]);
        let (n, _) = idx.prefix_le(9).unwrap();
        assert_eq!(n, 0);
        let (n, _) = idx.prefix_le(1000).unwrap();
        assert_eq!(n, 5);
        let (n, _) = idx.prefix_le(10).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn covers_and_remap() {
        let idx = index();
        assert!(idx.covers([2, 3]));
        assert!(idx.covers([1]));
        assert!(!idx.covers([0]));
        // corPred <= 30 && indPred <= 3 remaps onto index cols 0 and 1
        let pred = Expr::col_le(2, 30).and(Expr::col_le(3, 3));
        let remapped = idx.remap(&pred).unwrap();
        let cols: Vec<usize> = remapped.referenced_columns().into_iter().collect();
        assert_eq!(cols, vec![0, 1]);
        // uncovered column fails
        assert!(idx.remap(&Expr::col_le(0, 5)).is_none());
    }

    #[test]
    fn empty_partition_index() {
        let empty = Batch::empty(partition().schema().clone());
        let idx = CoveringIndex::build(&empty, &[2, 3]).unwrap();
        assert!(idx.is_empty());
        let (n, b) = idx.prefix_le(100).unwrap();
        assert_eq!(n, 0);
        assert_eq!(b.num_rows(), 0);
    }

    #[test]
    fn no_columns_rejected() {
        assert!(CoveringIndex::build(&partition(), &[]).is_err());
    }

    #[test]
    fn duplicate_leading_values_all_included() {
        let b = Batch::new(
            Schema::from_pairs(&[("c", DataType::I32)]),
            vec![Column::I32(vec![5, 5, 5, 6])],
        )
        .unwrap();
        let idx = CoveringIndex::build(&b, &[0]).unwrap();
        let (n, _) = idx.prefix_le(5).unwrap();
        assert_eq!(n, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hybrid_common::batch::{Batch, Column};
    use hybrid_common::datum::DataType;
    use hybrid_common::schema::Schema;
    use proptest::prelude::*;

    proptest! {
        /// The index access path (prefix range + residual filter) returns
        /// the same multiset of rows as filtering the base partition — the
        /// core correctness property behind the EDW's index-only plans.
        #[test]
        fn prefix_access_equals_full_filter(
            rows in proptest::collection::vec((0i32..50, 0i32..50), 0..80),
            bound in 0i64..50,
        ) {
            let schema = Schema::from_pairs(&[("a", DataType::I32), ("b", DataType::I32)]);
            let (a, b): (Vec<i32>, Vec<i32>) = rows.into_iter().unzip();
            let partition = Batch::new(schema, vec![Column::I32(a), Column::I32(b)]).unwrap();
            let idx = CoveringIndex::build(&partition, &[0, 1]).unwrap();
            let (touched, prefix) = idx.prefix_le(bound).unwrap();
            // every returned row satisfies the bound, and the count matches
            // a direct filter of the partition
            let lead = prefix.column(0).unwrap().as_i32().unwrap();
            prop_assert!(lead.iter().all(|&v| i64::from(v) <= bound));
            let expected = partition
                .column(0)
                .unwrap()
                .as_i32()
                .unwrap()
                .iter()
                .filter(|&&v| i64::from(v) <= bound)
                .count();
            prop_assert_eq!(prefix.num_rows(), expected);
            prop_assert_eq!(touched, expected);
            // and the (a, b) multiset survives the index round trip
            let mut idx_pairs: Vec<(i32, i32)> = (0..prefix.num_rows())
                .map(|r| {
                    (
                        prefix.column(0).unwrap().as_i32().unwrap()[r],
                        prefix.column(1).unwrap().as_i32().unwrap()[r],
                    )
                })
                .collect();
            idx_pairs.sort_unstable();
            let mut base_pairs: Vec<(i32, i32)> = (0..partition.num_rows())
                .filter(|&r| i64::from(partition.column(0).unwrap().as_i32().unwrap()[r]) <= bound)
                .map(|r| {
                    (
                        partition.column(0).unwrap().as_i32().unwrap()[r],
                        partition.column(1).unwrap().as_i32().unwrap()[r],
                    )
                })
                .collect();
            base_pairs.sort_unstable();
            prop_assert_eq!(idx_pairs, base_pairs);
        }
    }
}
