//! The enterprise data warehouse: a simulated shared-nothing parallel
//! database in the mold of the paper's DB2 DPF deployment (§4, §5).
//!
//! What the join algorithms need from the EDW — and what this crate
//! implements for real over `hybrid-common` batches:
//!
//! * **hash-distributed tables** across `n` workers, partitioned on a
//!   distribution column with the database's *internal* hash function
//!   (deliberately different from the DB↔JEN agreed shuffle hash, since the
//!   paper's DB2 partitioning scheme is opaque to the HDFS side);
//! * **covering indexes** with prefix range access, including the paper's
//!   index-only plan for Bloom filter construction ("the second index
//!   enables calculations of Bloom filters on T using an index-only access
//!   plan", §5);
//! * **local predicate + projection scans** per worker, metered by rows and
//!   bytes so the cost model can price table vs index access;
//! * the **Bloom filter UDF pipeline** (`cal_filter` → `get_filter` →
//!   `combine_filter` of §4.1.1): local filters per worker, aggregated to a
//!   global filter on one worker with intra-DB traffic metered;
//! * a small **optimizer + distributed join executor** for the DB-side
//!   join: broadcast the smaller side or repartition both on the join key,
//!   then hash-join, apply the post-join predicate, and aggregate with
//!   partial/final phases — the paper's "we take advantage of the query
//!   optimizer of the parallel database" (§3.1).

pub mod cluster;
pub mod index;
pub mod optimizer;
pub mod worker;

pub use cluster::DbCluster;
pub use index::CoveringIndex;
pub use optimizer::{DbJoinChoice, DbJoinSpec};
pub use worker::DbWorker;
