//! The modeled cluster: the paper's testbed (§5, *Experimental Setup*).

/// Aggregate hardware rates of the two clusters.
///
/// "Anchored" rates come straight from numbers the paper reports; "fitted"
/// rates are software-path costs (per-tuple UDF/socket/hash work) chosen so
/// the model reproduces the published relative behavior, and are documented
/// as such.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// JEN workers / HDFS DataNodes (paper: 30).
    pub jen_nodes: usize,
    /// DB2 DPF workers (paper: 30, six per server).
    pub db_workers: usize,

    /// **Anchored.** Aggregate HDFS read bandwidth, bytes/s. The paper's
    /// 1 TB text scan takes ~240 s warm or cold (§5.4) ⇒ ~4.3 GB/s across
    /// 30 DataNodes × 4 disks.
    pub hdfs_scan_bw: f64,

    /// **Anchored (floor).** Aggregate JEN record-processing rate, rows/s.
    /// The single process thread per worker parses, filters and routes
    /// every record (§4.4); the ~100 s end-to-end floors of the Parquet
    /// curves (e.g. Fig. 11 at σL = 0.001) against a 38 s pure-I/O scan
    /// put this near 15 B rows / 100 s = 150 M rows/s for 30 nodes.
    pub jen_process_rate: f64,

    /// Aggregate intra-HDFS network bandwidth, bytes/s (30 × 1 GbE).
    pub intra_hdfs_bw: f64,

    /// **Fitted.** Aggregate shuffle path rate, tuples/s: serialize, send,
    /// receive and hash-build per shuffled tuple. 15 M tuples/s reproduces
    /// the ~2× zigzag-vs-repartition spread of Fig. 8 given Table 1's
    /// 5 854 M shuffled tuples.
    pub jen_shuffle_rate: f64,

    /// Inter-cluster switch bandwidth, bytes/s (20 Gbit ⇒ 2.5 GB/s).
    pub cross_bw: f64,

    /// **Fitted.** Tuples/s the database can *export* through its C-UDF +
    /// socket path (repartition/zigzag sends of `T'`/`T''`). Low per-tuple
    /// rates here are what make zigzag's `BF_H` reduction of the DB
    /// transfer matter (Fig. 8's 1.8× over repartition(BF)).
    pub db_export_rate: f64,

    /// **Fitted.** Tuples/s the database can *ingest* via the `read_hdfs`
    /// UDF across all workers (DB-side joins). Sets the steep σL slope of
    /// Figs. 11–13.
    pub db_ingest_rate: f64,

    /// Aggregate DB table/index access bandwidth, bytes/s (5 servers × 11
    /// data disks).
    pub db_scan_bw: f64,

    /// Aggregate DB interconnect bandwidth, bytes/s (5 servers × 10 GbE).
    pub intra_db_bw: f64,

    /// Aggregate in-database join/aggregation rate, rows/s.
    pub db_join_rate: f64,

    /// Aggregate JEN hash-probe/aggregate rate, rows/s (8 cores/node).
    pub jen_join_rate: f64,

    /// Bloom filter build/apply rate, keys/s (hashing only; application
    /// during scans is already covered by `jen_process_rate`).
    pub bloom_build_rate: f64,

    /// Fixed per-query coordination overhead, seconds (connection setup,
    /// catalog/NameNode round-trips, result return).
    pub fixed_overhead_s: f64,

    /// **Fitted.** Per-message fabric overhead, seconds: framing,
    /// syscall/dispatch and receiver wake-up paid once per message
    /// regardless of payload. At the default 4096-row batches the paper's
    /// 5.9 B-tuple shuffle is ~1.4 M messages (~1.4 s, noise); at
    /// one-tuple-per-message framing the same run would pay ~5 900 s —
    /// this term is why the engine ships columnar batches.
    pub per_msg_overhead_s: f64,

    /// Aggregate local spill bandwidth, bytes/s: sequential run files on
    /// the JEN workers' local disks (30 nodes × 4 disks, but spill runs
    /// share the spindles with the HDFS scan, so the usable rate is below
    /// `hdfs_scan_bw`). Charged once per spilled byte written and once per
    /// byte read back when a memory budget forces the hybrid hash join to
    /// evict build partitions.
    pub spill_bw: f64,
}

impl ClusterSpec {
    /// The paper's testbed.
    pub fn paper() -> ClusterSpec {
        ClusterSpec {
            jen_nodes: 30,
            db_workers: 30,
            hdfs_scan_bw: 4.3e9,
            jen_process_rate: 150e6,
            intra_hdfs_bw: 3.75e9,
            jen_shuffle_rate: 15e6,
            cross_bw: 2.5e9,
            db_export_rate: 0.7e6,
            db_ingest_rate: 5e6,
            db_scan_bw: 5e9,
            intra_db_bw: 6.25e9,
            db_join_rate: 150e6,
            jen_join_rate: 300e6,
            bloom_build_rate: 200e6,
            fixed_overhead_s: 8.0,
            per_msg_overhead_s: 1.0e-6,
            spill_bw: 3.0e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_paper_numbers() {
        let c = ClusterSpec::paper();
        // 1 TB text scan ≈ 240 s
        let text_scan = 1.0e12 / c.hdfs_scan_bw;
        assert!((225.0..245.0).contains(&text_scan), "text scan {text_scan}");
        // 15 B-row process floor ≈ 100 s
        let process = 15.0e9 / c.jen_process_rate;
        assert!((90.0..110.0).contains(&process), "process floor {process}");
    }

    #[test]
    fn rates_positive() {
        let c = ClusterSpec::paper();
        for v in [
            c.hdfs_scan_bw,
            c.jen_process_rate,
            c.intra_hdfs_bw,
            c.jen_shuffle_rate,
            c.cross_bw,
            c.db_export_rate,
            c.db_ingest_rate,
            c.db_scan_bw,
            c.intra_db_bw,
            c.db_join_rate,
            c.jen_join_rate,
            c.bloom_build_rate,
            c.per_msg_overhead_s,
            c.spill_bw,
        ] {
            assert!(v > 0.0);
        }
    }
}
