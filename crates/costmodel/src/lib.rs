//! Analytic cost model: measured data volumes → paper-scale seconds.
//!
//! The experiments in this repository run on a scaled-down workload; the
//! paper's evaluation ran on a 31-node HDFS cluster joined to a 5-server
//! DB2 DPF cluster over a 20 Gbit switch. This crate turns the **measured**
//! per-run volumes (a [`hybrid_core::JoinSummary`]) into estimated
//! wall-clock seconds on the paper's hardware, reproducing the *shape* of
//! Figures 8–15: who wins, by what factor, and where the crossovers fall.
//!
//! ## Structure
//!
//! * [`scale::ScaleFactors`] rescales each volume to paper size — `T`-derived
//!   volumes by the T-row ratio, `L`-derived by the L-row ratio, Bloom
//!   filters by the key-universe ratio;
//! * [`cluster::ClusterSpec`] holds the hardware rates. Two are anchored
//!   directly to numbers the paper reports (§5.4): the HDFS I/O bandwidth
//!   (1 TB text scan = 240 s warm) and the JEN per-record processing rate
//!   (projected Parquet scan = 38 s I/O, with observed end-to-end floors
//!   around 100 s). The per-tuple exchange rates are *fitted* so that the
//!   published qualitative results hold — zigzag ≤ repartition(BF) ≤
//!   repartition with the paper's ≈2× spread, DB-side deteriorating
//!   steeply in σL, broadcast winning only below σT ≈ 0.001 — and each
//!   constant is documented at its definition;
//! * [`model::CostModel::estimate`] composes per-phase times the way the
//!   real engines overlap them: scanning ∥ shuffling ∥ hash-building inside
//!   JEN (Fig. 7), pipelined sends, and the zigzag join's deliberately
//!   sequential `BF_H` round-trip;
//! * [`replan::SunkWork`] + [`model::CostModel::estimate_remaining`] cost a
//!   mid-query restart at paper scale: the same model over a residual
//!   summary with the aborted attempt's sunk volumes zeroed.

pub mod cluster;
pub mod model;
pub mod overlap;
pub mod replan;
pub mod scale;
pub mod star;

pub use cluster::ClusterSpec;
pub use model::{CostBreakdown, CostModel, Phase};
pub use overlap::OverlapProfile;
pub use replan::{replan_break_even, SunkWork};
pub use scale::ScaleFactors;
pub use star::{cascade_shuffle_bytes, hypercube_shuffle_bytes, StarShuffleVolume};
