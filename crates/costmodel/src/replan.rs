//! Remaining-work costing for mid-query replans.
//!
//! The adaptive controller (`hybrid_core::adapt`) decides *whether* to
//! switch strategies with the advisor's abstract byte-volume costs. This
//! module answers the paper-scale follow-up: **what would the replan have
//! cost on the paper's hardware?** It reuses the full phase-structured
//! [`CostModel`] by building a *residual* summary — the measured volumes
//! with everything the aborted attempt already paid for zeroed out — so
//! the remaining-work estimate inherits every overlap rule, anchor, and
//! skew factor of the normal model instead of re-deriving its own.
//!
//! At the observation point both scans have completed (the controller
//! observes *exact* actuals, which requires the prescan to finish), so a
//! restart re-pays neither the HDFS scan nor the DB-side prep; if the
//! aborted attempt built and shipped `BF_DB`, a restart onto another
//! Bloom-consuming strategy reuses the serialized filter from cache and
//! re-pays neither the build nor the cross-cluster exchange.

use crate::model::{CostBreakdown, CostModel};
use crate::scale::ScaleFactors;
use hybrid_core::{JoinAlgorithm, JoinSummary, REPLAN_HYSTERESIS};

/// What an aborted attempt already paid for by the observation point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SunkWork {
    /// Both table scans ran to completion: the HDFS scan volume and the
    /// DB-side prep (table/index scan) are sunk. Always true at the
    /// controller's observation point; `false` models a hypothetical
    /// earlier switch.
    pub scans_done: bool,
    /// `BF_DB` was built and multicast before the switch; the restart
    /// target reuses the cached serialized filter.
    pub bloom_reusable: bool,
}

impl SunkWork {
    /// The controller's actual observation point: scans complete, Bloom
    /// reusable iff the aborted attempt was a Bloom-consuming strategy.
    pub fn at_observation(aborted: JoinAlgorithm) -> SunkWork {
        SunkWork {
            scans_done: true,
            bloom_reusable: consumes_bf_db(aborted),
        }
    }
}

/// Whether a strategy builds/consumes the database-side Bloom filter — the
/// precondition for a restart to find it in cache.
fn consumes_bf_db(alg: JoinAlgorithm) -> bool {
    matches!(
        alg,
        JoinAlgorithm::DbSide { bloom: true }
            | JoinAlgorithm::Repartition { bloom: true }
            | JoinAlgorithm::Zigzag
    )
}

/// The residual volumes a restart must still move: `summary` minus what
/// `sunk` already covered.
fn residual(summary: &JoinSummary, target: JoinAlgorithm, sunk: &SunkWork) -> JoinSummary {
    let mut s = *summary;
    if sunk.scans_done {
        // The prescan decoded every HDFS block and ran the DB-side
        // predicate; a restart starts from the materialized survivors.
        s.hdfs_bytes_scanned = 0;
        s.hdfs_rows_raw = 0;
        s.db_scan_bytes = 0;
        s.db_index_bytes = 0;
    }
    if sunk.bloom_reusable && consumes_bf_db(target) {
        // Cache hit: neither the key inserts nor the cross-cluster ship.
        s.bloom_keys_inserted = 0;
        s.bloom_cross_bytes = 0;
    }
    s
}

impl CostModel {
    /// Paper-scale seconds a restart onto `algorithm` still needs, given
    /// the volumes it would move (`summary`, measured or predicted for the
    /// *target* strategy) and what the aborted attempt already paid for.
    ///
    /// `estimate_remaining(.., &SunkWork::default())` equals
    /// [`CostModel::estimate`] exactly — nothing sunk, nothing discounted.
    pub fn estimate_remaining(
        &self,
        algorithm: JoinAlgorithm,
        summary: &JoinSummary,
        scale: &ScaleFactors,
        sunk: &SunkWork,
    ) -> CostBreakdown {
        self.estimate(algorithm, &residual(summary, algorithm, sunk), scale)
    }
}

/// The controller's decision rule at paper scale: a restart is worthwhile
/// iff the candidate's remaining time beats the incumbent's remaining time
/// by more than the replan hysteresis margin (switching has fixed costs —
/// teardown, fresh task sets — that a marginal win never recoups).
pub fn replan_break_even(
    current_remaining: &CostBreakdown,
    candidate_remaining: &CostBreakdown,
) -> bool {
    candidate_remaining.total_s * REPLAN_HYSTERESIS < current_remaining.total_s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table-1-shaped volumes for a repartition(BF)-class run.
    fn summary() -> JoinSummary {
        JoinSummary {
            hdfs_tuples_shuffled: 591_000_000,
            hdfs_shuffle_bytes: 591_000_000 * 58,
            db_tuples_sent: 165_000_000,
            db_data_tuples: 165_000_000,
            cross_db_data_bytes: 165_000_000 * 12,
            cross_bytes: 165_000_000 * 12,
            cross_db_to_jen_bytes: 165_000_000 * 12,
            intra_hdfs_bytes: 591_000_000 * 58,
            hdfs_bytes_scanned: 170_000_000_000,
            hdfs_rows_raw: 15_000_000_000,
            hdfs_rows_after_pred: 6_000_000_000,
            hdfs_rows_after_bloom: 600_000_000,
            db_index_rows: 160_000_000,
            db_index_bytes: 160_000_000 * 12,
            t_prime_rows: 160_000_000,
            bloom_keys_inserted: 16_000_000,
            bloom_cross_bytes: 16 << 20,
            fabric_msgs: 591_000_000 / 4096,
            ..JoinSummary::default()
        }
    }

    #[test]
    fn nothing_sunk_matches_plain_estimate() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        for alg in [
            JoinAlgorithm::Repartition { bloom: true },
            JoinAlgorithm::Zigzag,
            JoinAlgorithm::Broadcast,
        ] {
            let full = m.estimate(alg, &summary(), &id);
            let rem = m.estimate_remaining(alg, &summary(), &id, &SunkWork::default());
            assert_eq!(full, rem, "{alg:?}");
        }
    }

    #[test]
    fn sunk_scans_shrink_the_restart() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let alg = JoinAlgorithm::Repartition { bloom: true };
        let full = m.estimate(alg, &summary(), &id);
        let rem = m.estimate_remaining(
            alg,
            &summary(),
            &id,
            &SunkWork {
                scans_done: true,
                bloom_reusable: false,
            },
        );
        assert!(
            rem.total_s < full.total_s,
            "restart {:.1}s must beat full {:.1}s",
            rem.total_s,
            full.total_s
        );
        // phase structure survives the zeroing — same names, same count
        let names: Vec<_> = full.phases.iter().map(|p| p.name).collect();
        let rnames: Vec<_> = rem.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, rnames);
    }

    #[test]
    fn bloom_reuse_discounts_consumers_only() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let sunk_scans = SunkWork {
            scans_done: true,
            bloom_reusable: false,
        };
        let sunk_all = SunkWork {
            scans_done: true,
            bloom_reusable: true,
        };
        // a Bloom consumer gets cheaper with the filter in cache
        let alg = JoinAlgorithm::Repartition { bloom: true };
        let without = m.estimate_remaining(alg, &summary(), &id, &sunk_scans);
        let with = m.estimate_remaining(alg, &summary(), &id, &sunk_all);
        assert!(with.total_s < without.total_s);
        // a non-consumer sees no difference at all
        let alg = JoinAlgorithm::Broadcast;
        let without = m.estimate_remaining(alg, &summary(), &id, &sunk_scans);
        let with = m.estimate_remaining(alg, &summary(), &id, &sunk_all);
        assert_eq!(without, with);
    }

    #[test]
    fn at_observation_tracks_the_aborted_strategy() {
        assert_eq!(
            SunkWork::at_observation(JoinAlgorithm::Zigzag),
            SunkWork {
                scans_done: true,
                bloom_reusable: true
            }
        );
        assert_eq!(
            SunkWork::at_observation(JoinAlgorithm::Repartition { bloom: false }),
            SunkWork {
                scans_done: true,
                bloom_reusable: false
            }
        );
    }

    #[test]
    fn break_even_applies_hysteresis() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let sunk = SunkWork::at_observation(JoinAlgorithm::Repartition { bloom: true });
        let incumbent = m.estimate_remaining(
            JoinAlgorithm::Repartition { bloom: false },
            &summary(),
            &id,
            &sunk,
        );
        let candidate = m.estimate_remaining(
            JoinAlgorithm::Repartition { bloom: true },
            &summary(),
            &id,
            &sunk,
        );
        // a marginal win (just under the incumbent) never clears the bar
        let marginal = CostBreakdown {
            phases: vec![],
            total_s: incumbent.total_s * 0.99,
        };
        assert!(!replan_break_even(&incumbent, &marginal));
        // the decision is consistent with the raw ratio either way
        assert_eq!(
            replan_break_even(&incumbent, &candidate),
            candidate.total_s * REPLAN_HYSTERESIS < incumbent.total_s
        );
    }
}
