//! Rescaling measured volumes to paper size.

/// Multipliers from the experiment's scale to the paper's.
///
/// Volumes derived from `T` (database tuples shipped, `T'` rows) scale by
/// `t`; volumes derived from `L` (scan bytes, shuffled tuples, DB-side
/// ingestion) scale by `l`; Bloom-filter and key-set sizes scale with the
/// join-key universe, `keys`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFactors {
    pub t: f64,
    pub l: f64,
    pub keys: f64,
}

/// The paper's dataset sizes (§5, *Dataset*).
pub const PAPER_T_ROWS: f64 = 1.6e9;
pub const PAPER_L_ROWS: f64 = 15.0e9;
pub const PAPER_KEYS: f64 = 16.0e6;

impl ScaleFactors {
    /// No rescaling — report times for the volumes as measured.
    pub fn identity() -> ScaleFactors {
        ScaleFactors {
            t: 1.0,
            l: 1.0,
            keys: 1.0,
        }
    }

    /// Factors mapping an experiment with the given row/key counts onto the
    /// paper's 1.6 B-row `T` / 15 B-row `L` / 16 M-key dataset.
    pub fn to_paper(t_rows: usize, l_rows: usize, num_keys: usize) -> ScaleFactors {
        ScaleFactors {
            t: PAPER_T_ROWS / t_rows.max(1) as f64,
            l: PAPER_L_ROWS / l_rows.max(1) as f64,
            keys: PAPER_KEYS / num_keys.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_one() {
        let s = ScaleFactors::identity();
        assert_eq!(
            s,
            ScaleFactors {
                t: 1.0,
                l: 1.0,
                keys: 1.0
            }
        );
    }

    #[test]
    fn to_paper_ratios() {
        let s = ScaleFactors::to_paper(160_000, 1_500_000, 1_600);
        assert!((s.t - 10_000.0).abs() < 1e-6);
        assert!((s.l - 10_000.0).abs() < 1e-6);
        assert!((s.keys - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_guard() {
        let s = ScaleFactors::to_paper(0, 0, 0);
        assert!(s.t.is_finite() && s.l.is_finite() && s.keys.is_finite());
    }
}
