//! Phase-structured time estimation per join algorithm.

use crate::cluster::ClusterSpec;
use crate::overlap::{blend, OverlapProfile};
use crate::scale::ScaleFactors;
use hybrid_common::trace::Stage;
use hybrid_core::{JoinAlgorithm, JoinSummary};

/// One named contribution to a run's estimated time.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    pub name: &'static str,
    pub seconds: f64,
}

/// A run's estimated time and its composition.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// The phases as they contribute to the total (overlapped stages appear
    /// as a single `max(...)`-valued phase).
    pub phases: Vec<Phase>,
    pub total_s: f64,
}

impl CostBreakdown {
    fn from_phases(phases: Vec<Phase>) -> CostBreakdown {
        let total_s = phases.iter().map(|p| p.seconds).sum();
        CostBreakdown { phases, total_s }
    }
}

/// The cost model: a [`ClusterSpec`] applied to measured volumes.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub cluster: ClusterSpec,
}

/// Paper-scale intermediate quantities derived from one run.
#[derive(Debug, Clone, Copy)]
struct Volumes {
    scan_io_s: f64,
    process_s: f64,
    shuffle_s: f64,
    build_s: f64,
    probe_s: f64,
    l_local_probe_s: f64,
    db_prep_s: f64,
    bf_build_s: f64,
    bf_exchange_s: f64,
    bf_apply_db_s: f64,
    keyset_exchange_s: f64,
    perf_keys_s: f64,
    perf_bitmap_s: f64,
    db_export_s: f64,
    db_ingest_s: f64,
    db_shuffle_s: f64,
    db_join_s: f64,
    /// Per-message fabric overhead — shrinks ~1/batch_rows while every
    /// row-denominated volume above stays fixed.
    msg_overhead_s: f64,
    /// Local spill traffic (hybrid hash join under a memory budget): every
    /// evicted build byte is written once and read back once. Zero for
    /// runs that stayed resident, so budget-free estimates are unchanged.
    spill_io_s: f64,
}

impl CostModel {
    pub fn paper() -> CostModel {
        CostModel {
            cluster: ClusterSpec::paper(),
        }
    }

    fn volumes(&self, s: &JoinSummary, f: &ScaleFactors) -> Volumes {
        let c = &self.cluster;
        let scan_bytes = s.hdfs_bytes_scanned as f64 * f.l;
        let rows_raw = s.hdfs_rows_raw as f64 * f.l;
        let shuffled = s.hdfs_tuples_shuffled as f64 * f.l;
        let shuffle_bytes = s.hdfs_shuffle_bytes as f64 * f.l;
        let l_after_bloom = s.hdfs_rows_after_bloom as f64 * f.l;
        let l_after_pred = s.hdfs_rows_after_pred as f64 * f.l;
        // export volume: the db_data stream only — the PERF baseline's key
        // and bitmap streams are charged separately. Synthetic summaries
        // that fill only the Table-1 total fall back to it.
        let db_sent = if s.db_data_tuples > 0 {
            s.db_data_tuples as f64 * f.t
        } else {
            s.db_tuples_sent as f64 * f.t
        };
        let db_sent_bytes = s.cross_db_data_bytes as f64 * f.t;
        let hdfs_sent = s.hdfs_tuples_sent as f64 * f.l;
        let hdfs_sent_bytes = s.cross_hdfs_data_bytes as f64 * f.l;
        let t_prime = s.t_prime_rows as f64 * f.t;
        // The hottest JEN worker bounds every per-worker phase that handles
        // shuffled data: with max/mean = k, the straggler finishes k× after
        // a balanced worker would. Summaries without the counter (or from
        // algorithms with no shuffle) report 0 and keep the balanced model.
        let skew = s.shuffle_max_over_mean_x1000.max(1000) as f64 / 1000.0;
        Volumes {
            scan_io_s: scan_bytes / c.hdfs_scan_bw,
            process_s: rows_raw / c.jen_process_rate,
            shuffle_s: (shuffled / c.jen_shuffle_rate).max(shuffle_bytes / c.intra_hdfs_bw) * skew,
            build_s: l_after_bloom / c.jen_join_rate * skew,
            probe_s: db_sent / c.jen_join_rate * skew,
            l_local_probe_s: l_after_pred / c.jen_join_rate,
            db_prep_s: (s.db_scan_bytes + s.db_index_bytes) as f64 * f.t / c.db_scan_bw,
            bf_build_s: s.bloom_keys_inserted as f64 * f.t / c.bloom_build_rate,
            bf_exchange_s: s.bloom_cross_bytes as f64 * f.keys / c.cross_bw,
            bf_apply_db_s: t_prime / c.bloom_build_rate,
            keyset_exchange_s: s.keyset_cross_bytes as f64 * f.keys / c.cross_bw,
            perf_keys_s: (s.perf_keys_tuples as f64 * f.t / c.db_export_rate)
                .max(s.perf_keys_cross_bytes as f64 * f.t / c.cross_bw),
            perf_bitmap_s: s.perf_bitmap_cross_bytes as f64 * f.t / c.cross_bw,
            db_export_s: (db_sent / c.db_export_rate).max(db_sent_bytes / c.cross_bw),
            db_ingest_s: (hdfs_sent / c.db_ingest_rate).max(hdfs_sent_bytes / c.cross_bw),
            db_shuffle_s: s.intra_db_bytes as f64 * f.l / c.intra_db_bw,
            db_join_s: (t_prime + hdfs_sent) / c.db_join_rate,
            // message counts scale with the dominant (HDFS-side) row volume
            msg_overhead_s: s.fabric_msgs as f64 * f.l * c.per_msg_overhead_s,
            // spill volume tracks the build side, i.e. the HDFS scale factor
            spill_io_s: (s.spill_bytes_written + s.spill_bytes_read) as f64 * f.l / c.spill_bw,
        }
    }

    /// The phase structure of one algorithm: sequential contributions plus
    /// concurrent groups whose combination rule depends on the overlap
    /// model (assumed `max` vs measured blend).
    fn phase_specs(&self, algorithm: JoinAlgorithm, v: &Volumes) -> Vec<PhaseSpec> {
        let scan = (v.scan_io_s.max(v.process_s), Some(Stage::Scan));
        let overhead = PhaseSpec::seq(
            "coordination + message overhead",
            self.cluster.fixed_overhead_s + v.msg_overhead_s,
        );
        let mut specs = match algorithm {
            JoinAlgorithm::DbSide { bloom } => {
                let mut specs = Vec::new();
                if bloom {
                    // BF_DB must exist before the HDFS scan starts.
                    specs.push(PhaseSpec::seq(
                        "db prep + BF_DB build/send",
                        v.db_prep_s + v.bf_build_s + v.bf_exchange_s,
                    ));
                    specs.push(PhaseSpec::overlap(
                        "hdfs scan ∥ ingest into DB",
                        vec![scan, (v.db_ingest_s, Some(Stage::ShuffleRecv))],
                    ));
                } else {
                    // T' prep overlaps the HDFS-side work entirely.
                    specs.push(PhaseSpec::overlap(
                        "hdfs scan ∥ ingest into DB ∥ db prep",
                        vec![
                            scan,
                            (v.db_ingest_s, Some(Stage::ShuffleRecv)),
                            (v.db_prep_s, None),
                        ],
                    ));
                }
                specs.push(PhaseSpec::seq(
                    "in-DB shuffle + join + aggregate",
                    v.db_shuffle_s + v.db_join_s,
                ));
                specs.push(overhead);
                specs
            }
            JoinAlgorithm::Broadcast => vec![
                PhaseSpec::overlap(
                    "hdfs scan ∥ T' broadcast ∥ local join",
                    vec![
                        scan,
                        (v.db_prep_s + v.db_export_s, Some(Stage::ShuffleSend)),
                        (v.l_local_probe_s, Some(Stage::Probe)),
                    ],
                ),
                overhead,
            ],
            JoinAlgorithm::Repartition { bloom: false } => vec![
                PhaseSpec::overlap(
                    "hdfs scan ∥ shuffle ∥ build ∥ T' send",
                    vec![
                        scan,
                        (v.shuffle_s, Some(Stage::ShuffleSend)),
                        (v.build_s, Some(Stage::HashBuild)),
                        (v.db_prep_s + v.db_export_s, None),
                    ],
                ),
                PhaseSpec::seq("probe + aggregate", v.probe_s),
                overhead,
            ],
            JoinAlgorithm::Repartition { bloom: true } => vec![
                PhaseSpec::seq(
                    "db prep + BF_DB build/send",
                    v.db_prep_s + v.bf_build_s + v.bf_exchange_s,
                ),
                PhaseSpec::overlap(
                    "hdfs scan ∥ shuffle ∥ build ∥ T' send",
                    vec![
                        scan,
                        (v.shuffle_s, Some(Stage::ShuffleSend)),
                        (v.build_s, Some(Stage::HashBuild)),
                        (v.db_export_s, None),
                    ],
                ),
                PhaseSpec::seq("probe + aggregate", v.probe_s),
                overhead,
            ],
            JoinAlgorithm::Zigzag => vec![
                PhaseSpec::seq(
                    "db prep + BF exchanges",
                    v.db_prep_s + v.bf_build_s + v.bf_exchange_s,
                ),
                PhaseSpec::overlap(
                    "hdfs scan ∥ shuffle ∥ build BF_H",
                    vec![
                        scan,
                        (v.shuffle_s, Some(Stage::ShuffleSend)),
                        (v.build_s, Some(Stage::HashBuild)),
                    ],
                ),
                PhaseSpec::seq("apply BF_H + T'' send", v.bf_apply_db_s + v.db_export_s),
                PhaseSpec::seq("probe + aggregate", v.probe_s),
                overhead,
            ],
            JoinAlgorithm::SemiJoin => vec![
                PhaseSpec::seq("db prep + key-set send", v.db_prep_s + v.keyset_exchange_s),
                PhaseSpec::overlap(
                    "hdfs scan ∥ shuffle ∥ build ∥ T' send",
                    vec![
                        scan,
                        (v.shuffle_s, Some(Stage::ShuffleSend)),
                        (v.build_s, Some(Stage::HashBuild)),
                        (v.db_export_s, None),
                    ],
                ),
                PhaseSpec::seq("probe + aggregate", v.probe_s),
                overhead,
            ],
            JoinAlgorithm::PerfJoin => vec![
                // key routing overlaps the scan/shuffle phase, but the
                // duplicated-per-tuple key stream pays the DB export path
                PhaseSpec::overlap(
                    "hdfs scan ∥ shuffle ∥ build ∥ T' keys send",
                    vec![
                        scan,
                        (v.shuffle_s, Some(Stage::ShuffleSend)),
                        (v.build_s, Some(Stage::HashBuild)),
                        (v.db_prep_s + v.perf_keys_s, None),
                    ],
                ),
                PhaseSpec::seq("positional bitmap replies", v.perf_bitmap_s),
                PhaseSpec::seq("matching T' send", v.db_export_s),
                PhaseSpec::seq("probe + aggregate", v.probe_s),
                overhead,
            ],
        };
        // Only runs that actually spilled carry the extra I/O phase, so
        // budget-free breakdowns keep their exact shape and totals.
        if v.spill_io_s > 0.0 {
            specs.push(PhaseSpec::seq("spill I/O", v.spill_io_s));
        }
        specs
    }

    /// Estimate paper-scale wall-clock seconds for one measured run,
    /// assuming perfect overlap of concurrent phases.
    ///
    /// The composition mirrors how the real engines overlap work:
    /// * JEN's scan, the L' shuffle, and hash-table building run
    ///   concurrently (Fig. 7) → they appear as one `max(...)` phase;
    /// * pipelined cross-cluster sends overlap the producing scan;
    /// * phases with true data dependencies (BF exchanges, the zigzag
    ///   `T''` shipment that must wait for `BF_H`) are sequential.
    pub fn estimate(
        &self,
        algorithm: JoinAlgorithm,
        summary: &JoinSummary,
        scale: &ScaleFactors,
    ) -> CostBreakdown {
        self.estimate_measured(algorithm, summary, scale, &OverlapProfile::assumed())
    }

    /// Like [`CostModel::estimate`], but concurrent phases combine using
    /// **measured** overlap fractions from a run's Timeline: each
    /// non-dominant component contributes the `(1 − f)` share of its time
    /// that did not overlap the dominant one. Pairs the profile never
    /// observed fall back to the assumed full overlap, so
    /// `estimate_measured(.., &OverlapProfile::assumed())` equals
    /// `estimate(..)` exactly — the A/B baseline.
    pub fn estimate_measured(
        &self,
        algorithm: JoinAlgorithm,
        summary: &JoinSummary,
        scale: &ScaleFactors,
        profile: &OverlapProfile,
    ) -> CostBreakdown {
        let v = self.volumes(summary, scale);
        let phases = self
            .phase_specs(algorithm, &v)
            .into_iter()
            .map(|spec| Phase {
                name: spec.name,
                seconds: blend(&spec.parts, profile),
            })
            .collect();
        CostBreakdown::from_phases(phases)
    }
}

/// One phase before the overlap rule is applied: a sequential contribution
/// is a single-part group (blend of one part is just its time).
struct PhaseSpec {
    name: &'static str,
    parts: Vec<(f64, Option<Stage>)>,
}

impl PhaseSpec {
    fn seq(name: &'static str, seconds: f64) -> PhaseSpec {
        PhaseSpec {
            name,
            parts: vec![(seconds, None)],
        }
    }

    fn overlap(name: &'static str, parts: Vec<(f64, Option<Stage>)>) -> PhaseSpec {
        PhaseSpec { name, parts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic summary at paper scale for the Table 1 configuration
    /// (σT=0.1, σL=0.4, SL'=0.1, ST'=0.2) on the Parquet format.
    fn paper_summary(shuffled: u64, db_sent: u64, after_bloom_fraction: f64) -> JoinSummary {
        let l_prime_rows = 6.0e9; // σL=0.4 of 15B
        JoinSummary {
            hdfs_tuples_shuffled: shuffled,
            db_tuples_sent: db_sent,
            hdfs_tuples_sent: 0,
            hdfs_shuffle_bytes: shuffled * 58,
            cross_db_data_bytes: db_sent * 12,
            cross_hdfs_data_bytes: 0,
            bloom_cross_bytes: 16 << 20,
            keyset_cross_bytes: 0,
            db_data_tuples: db_sent,
            perf_keys_tuples: 0,
            perf_keys_cross_bytes: 0,
            perf_bitmap_cross_bytes: 0,
            // default 4096-row batch framing of the shuffle volume
            fabric_msgs: shuffled / 4096,
            cross_bytes: db_sent * 12,
            cross_db_to_jen_bytes: db_sent * 12,
            cross_jen_to_db_bytes: 0,
            intra_hdfs_bytes: shuffled * 58,
            intra_db_bytes: 0,
            hdfs_bytes_scanned: 170_000_000_000, // projected Parquet read
            hdfs_rows_raw: 15_000_000_000,
            hdfs_rows_after_pred: l_prime_rows as u64,
            hdfs_rows_after_bloom: (l_prime_rows * after_bloom_fraction) as u64,
            hdfs_blocks_skipped: 0,
            db_rows_scanned: 0,
            db_index_rows: 160_000_000,
            db_scan_bytes: 0,
            db_index_bytes: 160_000_000 * 12,
            t_prime_rows: 160_000_000,
            bloom_keys_inserted: 16_000_000,
            shuffle_max_over_mean_x1000: 0,
            spill_bytes_written: 0,
            spill_bytes_read: 0,
            mem_high_water: 0,
        }
    }

    #[test]
    fn shuffle_skew_inflates_shuffle_bound_strategies_only() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let balanced = paper_summary(5_854_000_000, 165_000_000, 1.0);
        let mut skewed = balanced;
        skewed.shuffle_max_over_mean_x1000 = 4000; // straggler holds 4× mean
        let rep = JoinAlgorithm::Repartition { bloom: false };
        let rep_balanced = m.estimate(rep, &balanced, &id).total_s;
        let rep_skewed = m.estimate(rep, &skewed, &id).total_s;
        assert!(
            rep_skewed > rep_balanced * 1.5,
            "skew should slow repartition: {rep_balanced:.0}s -> {rep_skewed:.0}s"
        );
        // broadcast never shuffles L': with no shuffle counters set its
        // estimate must not move at all.
        let mut bc = paper_summary(0, 165_000_000 * 30, 1.0);
        bc.hdfs_shuffle_bytes = 0;
        let bc_balanced = m.estimate(JoinAlgorithm::Broadcast, &bc, &id).total_s;
        let mut bc_skewed = bc;
        bc_skewed.shuffle_max_over_mean_x1000 = 4000;
        // broadcast's phase structure uses l_local_probe_s / db_export_s,
        // none of which carry the skew factor
        let bc_after = m
            .estimate(JoinAlgorithm::Broadcast, &bc_skewed, &id)
            .total_s;
        assert_eq!(bc_balanced, bc_after);
    }

    #[test]
    fn table1_ordering_and_factors() {
        // Table 1's exact tuple counts; Fig. 8 reports zigzag up to 2.1×
        // faster than repartition and up to 1.8× over repartition(BF).
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let rep = m.estimate(
            JoinAlgorithm::Repartition { bloom: false },
            &paper_summary(5_854_000_000, 165_000_000, 1.0),
            &id,
        );
        let rep_bf = m.estimate(
            JoinAlgorithm::Repartition { bloom: true },
            &paper_summary(591_000_000, 165_000_000, 0.1),
            &id,
        );
        let zz = m.estimate(
            JoinAlgorithm::Zigzag,
            &paper_summary(591_000_000, 30_000_000, 0.1),
            &id,
        );
        assert!(
            zz.total_s < rep_bf.total_s && rep_bf.total_s < rep.total_s,
            "zigzag {:.0}s, repBF {:.0}s, rep {:.0}s",
            zz.total_s,
            rep_bf.total_s,
            rep.total_s
        );
        let vs_rep = rep.total_s / zz.total_s;
        let vs_bf = rep_bf.total_s / zz.total_s;
        assert!(
            (1.8..3.2).contains(&vs_rep),
            "zigzag vs rep factor {vs_rep:.2}"
        );
        assert!(
            (1.3..2.2).contains(&vs_bf),
            "zigzag vs repBF factor {vs_bf:.2}"
        );
        // magnitudes in the paper's 100–700 s band
        assert!(rep.total_s < 700.0 && zz.total_s > 50.0);
    }

    #[test]
    fn scan_anchors_visible_in_estimates() {
        // text format: scanning 1TB dominates; parquet: the ~100s floor.
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let mut s = paper_summary(0, 0, 1.0);
        s.hdfs_bytes_scanned = 1_000_000_000_000;
        let text = m.estimate(JoinAlgorithm::Repartition { bloom: false }, &s, &id);
        assert!(
            (200.0..300.0).contains(&text.total_s),
            "text floor {:.0}",
            text.total_s
        );
        let mut s = paper_summary(0, 0, 1.0);
        s.hdfs_bytes_scanned = 170_000_000_000;
        let parquet = m.estimate(JoinAlgorithm::Repartition { bloom: false }, &s, &id);
        assert!(
            (90.0..150.0).contains(&parquet.total_s),
            "parquet floor {:.0}",
            parquet.total_s
        );
    }

    #[test]
    fn scaling_from_experiment_size_matches_identity_at_paper_size() {
        let m = CostModel::paper();
        // volumes measured at 1/10000 scale
        let mut small = paper_summary(585_400, 16_500, 1.0);
        small.hdfs_bytes_scanned = 17_000_000;
        small.hdfs_rows_raw = 1_500_000;
        small.hdfs_rows_after_pred = 600_000;
        small.hdfs_rows_after_bloom = 600_000;
        small.t_prime_rows = 16_000;
        small.db_index_bytes = 16_000 * 12;
        small.bloom_keys_inserted = 1_600;
        small.hdfs_shuffle_bytes = 585_400 * 58;
        small.cross_db_data_bytes = 16_500 * 12;
        small.bloom_cross_bytes = (16 << 20) / 10_000;
        let scaled = m.estimate(
            JoinAlgorithm::Repartition { bloom: false },
            &small,
            &ScaleFactors::to_paper(160_000, 1_500_000, 1_600),
        );
        let big = m.estimate(
            JoinAlgorithm::Repartition { bloom: false },
            &paper_summary(5_854_000_000, 165_000_000, 1.0),
            &ScaleFactors::identity(),
        );
        let ratio = scaled.total_s / big.total_s;
        assert!(
            (0.9..1.1).contains(&ratio),
            "scale mismatch ratio {ratio:.3}"
        );
    }

    #[test]
    fn db_side_deteriorates_steeply_with_ingested_volume() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let mut times = Vec::new();
        for sigma_l in [0.001f64, 0.01, 0.1, 0.2] {
            let mut s = paper_summary(0, 0, 1.0);
            s.hdfs_tuples_sent = (15.0e9 * sigma_l) as u64;
            s.cross_hdfs_data_bytes = s.hdfs_tuples_sent * 58;
            let t = m.estimate(JoinAlgorithm::DbSide { bloom: false }, &s, &id);
            times.push(t.total_s);
        }
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // σL=0.2 at least 4x slower than σL=0.001 (paper: off the chart)
        assert!(times[3] > times[0] * 4.0, "{times:?}");
    }

    #[test]
    fn broadcast_beats_repartition_only_for_tiny_t_prime() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        // σT = 0.001 → T' = 1.6M rows broadcast to 30 workers
        let t_tiny = 1_600_000u64;
        let mut bc = paper_summary(0, t_tiny * 30, 1.0);
        bc.t_prime_rows = t_tiny;
        let mut rp = paper_summary(5_854_000_000, t_tiny, 1.0);
        rp.t_prime_rows = t_tiny;
        let bc_t = m.estimate(JoinAlgorithm::Broadcast, &bc, &id).total_s;
        let rp_t = m
            .estimate(JoinAlgorithm::Repartition { bloom: false }, &rp, &id)
            .total_s;
        assert!(bc_t < rp_t, "broadcast {bc_t:.0} vs repartition {rp_t:.0}");

        // σT = 0.01 → broadcast volume 10x: repartition wins
        let t_small = 16_000_000u64;
        let mut bc = paper_summary(0, t_small * 30, 1.0);
        bc.t_prime_rows = t_small;
        let mut rp = paper_summary(591_000_000, t_small, 1.0);
        rp.t_prime_rows = t_small;
        let bc_t = m.estimate(JoinAlgorithm::Broadcast, &bc, &id).total_s;
        let rp_t = m
            .estimate(JoinAlgorithm::Repartition { bloom: false }, &rp, &id)
            .total_s;
        assert!(rp_t < bc_t, "repartition {rp_t:.0} vs broadcast {bc_t:.0}");
    }

    #[test]
    fn measured_overlap_equals_assumed_on_empty_profile() {
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let s = paper_summary(591_000_000, 30_000_000, 0.1);
        for alg in [
            JoinAlgorithm::Repartition { bloom: false },
            JoinAlgorithm::Repartition { bloom: true },
            JoinAlgorithm::Zigzag,
            JoinAlgorithm::Broadcast,
            JoinAlgorithm::DbSide { bloom: true },
            JoinAlgorithm::SemiJoin,
            JoinAlgorithm::PerfJoin,
        ] {
            let assumed = m.estimate(alg, &s, &id);
            let measured = m.estimate_measured(alg, &s, &id, &OverlapProfile::assumed());
            assert_eq!(assumed, measured, "{alg:?}");
        }
    }

    #[test]
    fn measured_overlap_never_beats_assumed() {
        use hybrid_common::trace::Span;
        // A timeline where scan and shuffle barely overlap: the measured
        // estimate must be at least the assumed (perfect-overlap) one.
        let t = hybrid_common::trace::Timeline {
            spans: vec![
                Span {
                    worker: "jen-0".into(),
                    stage: Stage::Scan,
                    t_start: 0,
                    t_end: 100,
                    bytes: 0,
                    tuples: 0,
                },
                Span {
                    worker: "jen-0".into(),
                    stage: Stage::ShuffleSend,
                    t_start: 90,
                    t_end: 190,
                    bytes: 0,
                    tuples: 0,
                },
                Span {
                    worker: "jen-0".into(),
                    stage: Stage::HashBuild,
                    t_start: 190,
                    t_end: 250,
                    bytes: 0,
                    tuples: 0,
                },
            ],
            ..Default::default()
        };
        let profile = OverlapProfile::from_timeline(&t);
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let s = paper_summary(5_854_000_000, 165_000_000, 1.0);
        let alg = JoinAlgorithm::Repartition { bloom: false };
        let assumed = m.estimate(alg, &s, &id);
        let measured = m.estimate_measured(alg, &s, &id, &profile);
        assert!(
            measured.total_s >= assumed.total_s,
            "measured {:.1}s < assumed {:.1}s",
            measured.total_s,
            assumed.total_s
        );
        // and the poorly-overlapped shuffle must actually cost extra
        assert!(measured.total_s > assumed.total_s);
    }

    #[test]
    fn spill_volume_inflates_estimate() {
        // A run that evicted its build side pays the spill write + re-read;
        // the same run fully resident carries no "spill I/O" phase at all.
        let m = CostModel::paper();
        let id = ScaleFactors::identity();
        let resident = paper_summary(5_854_000_000, 165_000_000, 1.0);
        let mut spilled = resident;
        spilled.spill_bytes_written = 340_000_000_000; // ~L' bytes out...
        spilled.spill_bytes_read = 340_000_000_000; // ...and back in
        spilled.mem_high_water = 1 << 30;
        let alg = JoinAlgorithm::Repartition { bloom: false };
        let fast = m.estimate(alg, &resident, &id);
        let slow = m.estimate(alg, &spilled, &id);
        assert!(!fast.phases.iter().any(|p| p.name == "spill I/O"));
        let spill_phase = slow
            .phases
            .iter()
            .find(|p| p.name == "spill I/O")
            .expect("spilled run must carry a spill phase");
        assert!(
            (slow.total_s - fast.total_s - spill_phase.seconds).abs() < 1e-9,
            "spill must add exactly its own phase"
        );
        assert!(
            slow.total_s > fast.total_s + 100.0,
            "680 GB of spill traffic must cost real time: {:.0}s -> {:.0}s",
            fast.total_s,
            slow.total_s
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = CostModel::paper();
        let b = m.estimate(
            JoinAlgorithm::Zigzag,
            &paper_summary(591_000_000, 30_000_000, 0.1),
            &ScaleFactors::identity(),
        );
        let sum: f64 = b.phases.iter().map(|p| p.seconds).sum();
        assert!((sum - b.total_s).abs() < 1e-9);
        assert!(b.phases.len() >= 4);
    }
}
