//! Measured stage-overlap fractions, extracted from a run's [`Timeline`].
//!
//! The assumed-overlap cost model ([`crate::CostModel::estimate`]) treats
//! concurrent phases as perfectly overlapped: a `max(...)` over the
//! component times, the way Fig. 7 draws the JEN pipeline. Real runs
//! overlap imperfectly — the scan may drain before the shuffle starts, the
//! hash build may serialize behind the receive. This module measures how
//! much two stages *actually* ran concurrently and lets
//! [`crate::CostModel::estimate_measured`] blend between `max` (full
//! overlap) and `sum` (no overlap) per component pair.
//!
//! The fraction for a stage pair `(a, b)` is
//! `overlap_us(a, b) / min(busy_us(a), busy_us(b))` — 1.0 when the shorter
//! stage ran entirely inside the longer one, 0.0 when they never
//! coexisted. Pairs absent from the profile (stage not traced, or an empty
//! profile) fall back to 1.0, so a profile with no data reproduces the
//! assumed-overlap estimate exactly — that property is what makes the A/B
//! comparison in `timeline_report` meaningful.

use hybrid_common::trace::{Stage, Timeline};
use std::collections::BTreeMap;

/// Symmetric table of measured overlap fractions between pipeline stages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapProfile {
    /// Keyed by stage-name pair in canonical (sorted) order.
    pairs: BTreeMap<(&'static str, &'static str), f64>,
}

impl OverlapProfile {
    /// The empty profile: every lookup misses, so every phase combines with
    /// `max` — identical to the assumed-overlap path. Exposed for A/B runs.
    pub fn assumed() -> OverlapProfile {
        OverlapProfile::default()
    }

    /// Measure every stage pair present in `timeline`.
    pub fn from_timeline(timeline: &Timeline) -> OverlapProfile {
        let mut pairs = BTreeMap::new();
        for (i, &a) in Stage::ALL.iter().enumerate() {
            for &b in &Stage::ALL[i + 1..] {
                if let Some(f) = timeline.overlap_fraction(a, b) {
                    pairs.insert(Self::key(a, b), f);
                }
            }
        }
        OverlapProfile { pairs }
    }

    fn key(a: Stage, b: Stage) -> (&'static str, &'static str) {
        let (x, y) = (a.name(), b.name());
        if x <= y {
            (x, y)
        } else {
            (y, x)
        }
    }

    /// Measured fraction for a pair, `None` when the pair was not observed.
    /// A stage trivially overlaps itself fully.
    pub fn fraction(&self, a: Stage, b: Stage) -> Option<f64> {
        if a == b {
            return Some(1.0);
        }
        self.pairs.get(&Self::key(a, b)).copied()
    }

    /// Fraction with the assumed-overlap fallback applied.
    pub fn fraction_or_assumed(&self, a: Stage, b: Stage) -> f64 {
        self.fraction(a, b).unwrap_or(1.0)
    }

    /// Number of measured pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate `(stage_a, stage_b, fraction)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &'static str, f64)> + '_ {
        self.pairs.iter().map(|(&(a, b), &f)| (a, b, f))
    }
}

/// Combine concurrent component times using measured overlap.
///
/// The dominant component anchors the phase; every other component
/// contributes the part of its time that did **not** overlap the anchor:
/// `total = max + Σ (1 − f(stage_i, anchor_stage)) · tᵢ`. With all
/// fractions 1 this is `max(...)` (the assumed model); with all fractions 0
/// it is the serial sum.
pub fn blend(parts: &[(f64, Option<Stage>)], profile: &OverlapProfile) -> f64 {
    let Some(anchor_idx) = (0..parts.len()).max_by(|&i, &j| parts[i].0.total_cmp(&parts[j].0))
    else {
        return 0.0;
    };
    let (anchor_secs, anchor_stage) = parts[anchor_idx];
    let mut total = anchor_secs;
    for (i, &(secs, stage)) in parts.iter().enumerate() {
        if i == anchor_idx {
            continue;
        }
        let f = match (stage, anchor_stage) {
            (Some(s), Some(a)) => profile.fraction_or_assumed(s, a),
            _ => 1.0, // untraced component: keep the assumed full overlap
        };
        total += (1.0 - f.clamp(0.0, 1.0)) * secs;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_common::trace::Span;

    fn span(worker: &str, stage: Stage, t0: u64, t1: u64) -> Span {
        Span {
            worker: worker.into(),
            stage,
            t_start: t0,
            t_end: t1,
            bytes: 0,
            tuples: 0,
        }
    }

    #[test]
    fn empty_profile_reproduces_assumed_max() {
        let p = OverlapProfile::assumed();
        let parts = [(10.0, Some(Stage::Scan)), (4.0, Some(Stage::HashBuild))];
        assert_eq!(blend(&parts, &p), 10.0);
    }

    #[test]
    fn zero_overlap_sums() {
        let t = Timeline {
            spans: vec![
                span("jen-0", Stage::Scan, 0, 100),
                span("jen-0", Stage::HashBuild, 100, 150),
            ],
            ..Default::default()
        };
        let p = OverlapProfile::from_timeline(&t);
        assert_eq!(p.fraction(Stage::Scan, Stage::HashBuild), Some(0.0));
        let parts = [(10.0, Some(Stage::Scan)), (4.0, Some(Stage::HashBuild))];
        assert!((blend(&parts, &p) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_blends() {
        // HashBuild busy 50us, 25 of them inside Scan → fraction 0.5
        let t = Timeline {
            spans: vec![
                span("jen-0", Stage::Scan, 0, 100),
                span("jen-0", Stage::HashBuild, 75, 125),
            ],
            ..Default::default()
        };
        let p = OverlapProfile::from_timeline(&t);
        assert_eq!(p.fraction(Stage::Scan, Stage::HashBuild), Some(0.5));
        let parts = [(10.0, Some(Stage::Scan)), (4.0, Some(Stage::HashBuild))];
        assert!((blend(&parts, &p) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_is_symmetric_and_reflexive() {
        let t = Timeline {
            spans: vec![
                span("jen-0", Stage::Scan, 0, 10),
                span("jen-1", Stage::Probe, 5, 15),
            ],
            ..Default::default()
        };
        let p = OverlapProfile::from_timeline(&t);
        assert_eq!(
            p.fraction(Stage::Scan, Stage::Probe),
            p.fraction(Stage::Probe, Stage::Scan)
        );
        assert_eq!(p.fraction(Stage::Scan, Stage::Scan), Some(1.0));
    }

    #[test]
    fn untraced_stage_keeps_assumed_overlap() {
        let t = Timeline {
            spans: vec![span("jen-0", Stage::Scan, 0, 10)],
            ..Default::default()
        };
        let p = OverlapProfile::from_timeline(&t);
        assert_eq!(p.fraction(Stage::Scan, Stage::Aggregate), None);
        let parts = [(10.0, Some(Stage::Scan)), (4.0, Some(Stage::Aggregate))];
        assert_eq!(blend(&parts, &p), 10.0);
    }
}
