//! Predicted shuffle volume of a multiway star-join plan.
//!
//! Mirrors the executors' `multiway.shuffle.bytes` metering semantics
//! exactly: only cross-network traffic counts. A DB-exported dimension
//! always crosses (broadcast ships one copy per JEN worker, a hash route
//! or axis replication ships each copy once), while an intra-JEN
//! re-shuffle of `n` evenly spread pieces keeps `1/n` local — the same
//! exclusion the engine applies to a worker's own partition. The
//! prediction is an expectation over uniform routing; `bench_baseline`
//! prints it next to the measured meters so drift is visible.

use hybrid_core::advisor::{CascadeStep, StarEstimates};

/// Expected bytes a plan moves across the network, split by source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarShuffleVolume {
    /// Fact-table (and fact-derived intermediate) bytes shuffled inside JEN.
    pub fact_bytes: u64,
    /// Dimension bytes exported from the database.
    pub dim_bytes: u64,
}

impl StarShuffleVolume {
    pub fn total_bytes(&self) -> u64 {
        self.fact_bytes + self.dim_bytes
    }
}

/// Expected shuffle volume of a left-deep cascade: per step, either the
/// dimension broadcasts (`dim · n`, the intermediate stays put) or the
/// dimension exports once and the intermediate re-shuffles with `(n-1)/n`
/// of it crossing the network. The intermediate decays by each step's
/// pass fraction.
pub fn cascade_shuffle_bytes(est: &StarEstimates, steps: &[CascadeStep]) -> StarShuffleVolume {
    let n = est.num_jen_workers.max(1) as u64;
    let mut cur = est.fact_prime_bytes as f64;
    let mut fact = 0.0;
    let mut dim = 0u64;
    for step in steps {
        let d = est.dims[step.dim].dim_prime_bytes;
        if step.broadcast {
            dim += d * n;
        } else {
            dim += d;
            fact += cur * (n - 1) as f64 / n as f64;
        }
        cur *= est.dims[step.dim].pass_fraction.clamp(0.0, 1.0);
    }
    StarShuffleVolume {
        fact_bytes: fact.round() as u64,
        dim_bytes: dim,
    }
}

/// Expected shuffle volume of a one-shot hypercube: the fact routes once
/// into the grid (`(cells-1)/cells` of it crossing, each row owns one
/// cell) and dimension `i` replicates to the `cells / sᵢ` workers along
/// its axis.
pub fn hypercube_shuffle_bytes(est: &StarEstimates, shares: &[usize]) -> StarShuffleVolume {
    let cells: u64 = shares.iter().map(|&s| s as u64).product::<u64>().max(1);
    let fact = est.fact_prime_bytes as f64 * (cells - 1) as f64 / cells as f64;
    let dim = est
        .dims
        .iter()
        .zip(shares)
        .map(|(d, &s)| d.dim_prime_bytes * (cells / s.max(1) as u64))
        .sum();
    StarShuffleVolume {
        fact_bytes: fact.round() as u64,
        dim_bytes: dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_core::advisor::DimEstimates;

    fn est(fact: u64, dims: &[u64], n: usize) -> StarEstimates {
        StarEstimates {
            fact_prime_bytes: fact,
            fact_prime_rows: fact / 40,
            dims: dims
                .iter()
                .map(|&b| DimEstimates {
                    dim_prime_bytes: b,
                    dim_prime_rows: b / 12,
                    pass_fraction: 1.0,
                })
                .collect(),
            num_jen_workers: n,
        }
    }

    #[test]
    fn broadcast_cascade_never_moves_the_fact() {
        let e = est(1_000_000, &[1_000, 2_000], 8);
        let steps = [
            CascadeStep {
                dim: 0,
                broadcast: true,
            },
            CascadeStep {
                dim: 1,
                broadcast: true,
            },
        ];
        let v = cascade_shuffle_bytes(&e, &steps);
        assert_eq!(v.fact_bytes, 0);
        assert_eq!(v.dim_bytes, (1_000 + 2_000) * 8);
    }

    #[test]
    fn repartition_cascade_reships_the_decaying_intermediate() {
        let mut e = est(1_000_000, &[10_000, 10_000], 4);
        e.dims[0].pass_fraction = 0.5;
        let steps = [
            CascadeStep {
                dim: 0,
                broadcast: false,
            },
            CascadeStep {
                dim: 1,
                broadcast: false,
            },
        ];
        let v = cascade_shuffle_bytes(&e, &steps);
        // step 1: 3/4 of 1 MB; step 2: 3/4 of the halved intermediate
        assert_eq!(v.fact_bytes, 750_000 + 375_000);
        assert_eq!(v.dim_bytes, 20_000);
    }

    #[test]
    fn hypercube_replicates_each_dimension_along_its_axis() {
        let e = est(2_000_000, &[5_000, 5_000, 5_000], 8);
        let v = hypercube_shuffle_bytes(&e, &[2, 2, 2]);
        // 7/8 of the fact crosses; each dim lands on 8/2 = 4 workers
        assert_eq!(v.fact_bytes, 1_750_000);
        assert_eq!(v.dim_bytes, 3 * 5_000 * 4);
        assert_eq!(v.total_bytes(), 1_750_000 + 60_000);
    }

    #[test]
    fn degenerate_single_cell_grid_moves_no_fact() {
        let e = est(1_000_000, &[1_000], 4);
        let v = hypercube_shuffle_bytes(&e, &[1]);
        assert_eq!(v.fact_bytes, 0);
        assert_eq!(v.dim_bytes, 1_000);
    }
}
