//! The cross-query *result* cache.
//!
//! Keyed by the normalized query fingerprint
//! ([`hybrid_core::cache::query_fingerprint`]): every semantic field of the
//! query, independent of which algorithm executes it — all algorithms are
//! bit-identical on the same query, so a cached result is exactly what any
//! execution would return. Entries remember both table names so a rewrite
//! of either side evicts them ([`ResultCache::invalidate_table`]).

use hybrid_common::batch::Batch;
use hybrid_common::cache::LruCache;
use hybrid_common::metrics::Metrics;
use hybrid_core::cache::query_fingerprint;
use hybrid_core::{HybridQuery, JoinAlgorithm};
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ResultKey {
    fingerprint: String,
    db_table: String,
    hdfs_table: String,
}

impl ResultKey {
    fn of(query: &HybridQuery) -> ResultKey {
        ResultKey {
            fingerprint: query_fingerprint(query),
            db_table: query.db_table.clone(),
            hdfs_table: query.hdfs_table.clone(),
        }
    }
}

/// A cached final result plus the algorithm that produced it (reported so
/// hit responses stay self-describing).
#[derive(Clone)]
pub struct CachedResult {
    pub result: Arc<Batch>,
    pub algorithm: JoinAlgorithm,
}

/// Capacity-bounded LRU over final query results. Counters land under
/// `svc.cache.result.*` in the service's root registry.
#[derive(Clone)]
pub struct ResultCache {
    lru: LruCache<ResultKey, CachedResult>,
}

impl ResultCache {
    pub const METRIC_PREFIX: &'static str = "svc.cache.result";

    pub fn new(capacity: usize, metrics: Metrics) -> ResultCache {
        ResultCache {
            lru: LruCache::new(Self::METRIC_PREFIX, capacity, metrics),
        }
    }

    pub fn get(&self, query: &HybridQuery) -> Option<CachedResult> {
        self.lru.get(&ResultKey::of(query))
    }

    pub fn insert(&self, query: &HybridQuery, cached: CachedResult) {
        self.lru.insert(ResultKey::of(query), cached);
    }

    /// Drop every result that read `table` (on either side). Returns how
    /// many entries died.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.lru
            .invalidate_if(|k| k.db_table == table || k.hdfs_table == table)
    }

    pub fn len(&self) -> usize {
        self.lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}
