//! The cross-query *result* cache.
//!
//! Keyed by the normalized query fingerprint
//! ([`hybrid_core::cache::query_fingerprint`]): every semantic field of the
//! query, independent of which algorithm executes it — all algorithms are
//! bit-identical on the same query, so a cached result is exactly what any
//! execution would return. Entries remember both table names so a rewrite
//! of either side evicts them ([`ResultCache::invalidate_table`]), and
//! inserts are generation-checked against the system's
//! [`TableGenerations`]: a query whose execution straddled a rewrite of
//! either table carries a stale [`ResultCache::generations`] snapshot and
//! its insert is dropped — otherwise it would repopulate the cache with a
//! pre-rewrite answer *after* the rewrite's invalidation ran, and every
//! later identical query would be served that stale result.

use hybrid_common::batch::Batch;
use hybrid_common::cache::{LruCache, TableGenerations};
use hybrid_common::metrics::Metrics;
use hybrid_core::cache::query_fingerprint;
use hybrid_core::{HybridQuery, JoinAlgorithm};
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ResultKey {
    fingerprint: String,
    db_table: String,
    hdfs_table: String,
}

impl ResultKey {
    fn of(query: &HybridQuery) -> ResultKey {
        ResultKey {
            fingerprint: query_fingerprint(query),
            db_table: query.db_table.clone(),
            hdfs_table: query.hdfs_table.clone(),
        }
    }
}

/// A cached final result plus the algorithm that produced it (reported so
/// hit responses stay self-describing).
#[derive(Clone)]
pub struct CachedResult {
    pub result: Arc<Batch>,
    pub algorithm: JoinAlgorithm,
}

/// A query's (db table, hdfs table) load generations, snapshotted before
/// execution and re-checked at insert time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSnapshot {
    pub db: u64,
    pub hdfs: u64,
}

/// Capacity-bounded LRU over final query results. Counters land under
/// `svc.cache.result.*` in the service's root registry.
#[derive(Clone)]
pub struct ResultCache {
    lru: LruCache<ResultKey, CachedResult>,
    /// The shared system's per-table load generations.
    gens: TableGenerations,
}

impl ResultCache {
    pub const METRIC_PREFIX: &'static str = "svc.cache.result";

    pub fn new(capacity: usize, metrics: Metrics, gens: TableGenerations) -> ResultCache {
        ResultCache {
            lru: LruCache::new(Self::METRIC_PREFIX, capacity, metrics),
            gens,
        }
    }

    pub fn get(&self, query: &HybridQuery) -> Option<CachedResult> {
        self.lru.get(&ResultKey::of(query))
    }

    /// The load generations of both of `query`'s tables right now.
    /// Snapshot this *before* execution starts reading table data and hand
    /// it to [`ResultCache::insert`].
    pub fn generations(&self, query: &HybridQuery) -> GenSnapshot {
        GenSnapshot {
            db: self.gens.get(&query.db_table),
            hdfs: self.gens.get(&query.hdfs_table),
        }
    }

    /// Cache `cached` for `query`, unless either table was rewritten since
    /// `snapshot` was taken — a stale insert is dropped (counted under
    /// `svc.cache.result.stale_inserts`) because the result was computed
    /// over pre-rewrite data. Returns whether the entry landed.
    pub fn insert(&self, query: &HybridQuery, cached: CachedResult, snapshot: GenSnapshot) -> bool {
        let key = ResultKey::of(query);
        let (db_table, hdfs_table) = (key.db_table.clone(), key.hdfs_table.clone());
        self.lru.insert_if(key, cached, || {
            self.gens.get(&db_table) == snapshot.db && self.gens.get(&hdfs_table) == snapshot.hdfs
        })
    }

    /// Drop every result that read `table` (on either side). Returns how
    /// many entries died.
    pub fn invalidate_table(&self, table: &str) -> usize {
        self.lru
            .invalidate_if(|k| k.db_table == table || k.hdfs_table == table)
    }

    pub fn len(&self) -> usize {
        self.lru.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}
