//! Admission control and scheduling for the query service.
//!
//! The controller enforces two bounds: at most `max_in_flight` queries
//! executing and at most `max_queued` queries waiting. A submission beyond
//! both is **rejected** immediately (typed [`ServiceError::Rejected`]); a
//! queued submission that cannot start within `queue_timeout` **times
//! out** ([`ServiceError::TimedOut`]). Within the queue, the scheduling
//! policy decides who runs next when a slot frees:
//!
//! * [`SchedulePolicy::Fifo`] — arrival order;
//! * [`SchedulePolicy::Sjf`] — shortest estimated cost first (the cost
//!   comes from the `costmodel`/`estimation` path, computed per query at
//!   submission), with arrival order breaking ties.
//!
//! New arrivals never barge past waiters: a query is only fast-pathed into
//! a slot when the queue is empty. That keeps FIFO strictly fair and
//! bounds SJF's starvation to the queue timeout.

use crate::ServiceError;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which waiting query runs when an execution slot frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Arrival order.
    #[default]
    Fifo,
    /// Shortest estimated cost first; arrival order breaks ties.
    Sjf,
}

impl SchedulePolicy {
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::Sjf => "sjf",
        }
    }

    /// Parse the bench-driver spelling.
    pub fn parse(s: &str) -> Option<SchedulePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedulePolicy::Fifo),
            "sjf" => Some(SchedulePolicy::Sjf),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Ticket {
    seq: u64,
    cost: f64,
}

#[derive(Debug, Default)]
struct State {
    in_flight: usize,
    queue: Vec<Ticket>,
}

/// The admission controller + scheduler. `admit` blocks the calling client
/// thread (the service is closed-loop: clients are the executors) until a
/// slot is granted or a typed error says why not.
#[derive(Debug)]
pub(crate) struct Scheduler {
    max_in_flight: usize,
    max_queued: usize,
    queue_timeout: Duration,
    policy: SchedulePolicy,
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    pub fn new(
        max_in_flight: usize,
        max_queued: usize,
        queue_timeout: Duration,
        policy: SchedulePolicy,
    ) -> Scheduler {
        Scheduler {
            max_in_flight: max_in_flight.max(1),
            max_queued,
            queue_timeout,
            policy,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// The waiting ticket the policy would start next.
    fn chosen(&self, queue: &[Ticket]) -> Option<u64> {
        match self.policy {
            SchedulePolicy::Fifo => queue.iter().map(|t| t.seq).min(),
            SchedulePolicy::Sjf => queue
                .iter()
                .min_by(|a, b| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.seq.cmp(&b.seq))
                })
                .map(|t| t.seq),
        }
    }

    /// Wait for an execution slot. Returns how long the query queued.
    /// `cost` is the scheduler's estimate for this query (ignored under
    /// FIFO); `seq` must be unique and monotone with submission order.
    pub fn admit(&self, seq: u64, cost: f64) -> Result<Duration, ServiceError> {
        let start = Instant::now();
        let mut st = self.state.lock().expect("scheduler mutex poisoned");
        // Fast path only when nobody is waiting — no barging.
        if st.in_flight < self.max_in_flight && st.queue.is_empty() {
            st.in_flight += 1;
            return Ok(Duration::ZERO);
        }
        if st.queue.len() >= self.max_queued {
            return Err(ServiceError::Rejected {
                queued: st.queue.len(),
                max_queued: self.max_queued,
            });
        }
        st.queue.push(Ticket { seq, cost });
        loop {
            if st.in_flight < self.max_in_flight && self.chosen(&st.queue) == Some(seq) {
                st.queue.retain(|t| t.seq != seq);
                st.in_flight += 1;
                // With slots still free and waiters still queued, the next
                // chosen waiter may have rechecked before we left the
                // queue (it saw itself not chosen and went back to sleep).
                // Nobody else will notify it — a release() only fires when
                // a query *finishes* — so wake the queue again or that
                // waiter sleeps until its full queue timeout.
                if st.in_flight < self.max_in_flight && !st.queue.is_empty() {
                    self.cv.notify_all();
                }
                return Ok(start.elapsed());
            }
            let waited = start.elapsed();
            if waited >= self.queue_timeout {
                st.queue.retain(|t| t.seq != seq);
                // Our departure may make a different waiter eligible.
                self.cv.notify_all();
                return Err(ServiceError::TimedOut { waited });
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, self.queue_timeout - waited)
                .expect("scheduler mutex poisoned");
            st = guard;
        }
    }

    /// Give an execution slot back (the query finished or failed).
    pub fn release(&self) {
        let mut st = self.state.lock().expect("scheduler mutex poisoned");
        debug_assert!(st.in_flight > 0, "release without admit");
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    /// (in-flight, queued) right now — observability for the driver.
    pub fn load(&self) -> (usize, usize) {
        let st = self.state.lock().expect("scheduler mutex poisoned");
        (st.in_flight, st.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sched(policy: SchedulePolicy, max_queued: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(
            1,
            max_queued,
            Duration::from_secs(5),
            policy,
        ))
    }

    #[test]
    fn fast_path_counts_in_flight() {
        let s = sched(SchedulePolicy::Fifo, 4);
        assert_eq!(s.admit(0, 1.0).unwrap(), Duration::ZERO);
        assert_eq!(s.load(), (1, 0));
        s.release();
        assert_eq!(s.load(), (0, 0));
    }

    #[test]
    fn full_queue_rejects() {
        let s = sched(SchedulePolicy::Fifo, 0);
        s.admit(0, 1.0).unwrap();
        match s.admit(1, 1.0) {
            Err(ServiceError::Rejected { queued, max_queued }) => {
                assert_eq!((queued, max_queued), (0, 0));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        s.release();
    }

    /// Queue timeouts across 100 seeded schedules: each seed perturbs the
    /// timeout length, the scheduling policy, how many extra waiters pile
    /// up behind the stuck one, and when they arrive. Whatever the
    /// interleaving, every waiter must surface `TimedOut` (the slot holder
    /// never releases), report `waited >= timeout`, and leave the queue
    /// empty — a ticket leaked by one schedule would fail the load check.
    #[test]
    fn queued_submission_times_out() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let timeout = Duration::from_micros(rng.gen_range(500..4000u64));
            let policy = if rng.gen_range(0..2u32) == 0 {
                SchedulePolicy::Fifo
            } else {
                SchedulePolicy::Sjf
            };
            let extra_waiters = rng.gen_range(0..3usize);
            let s = Arc::new(Scheduler::new(1, 4, timeout, policy));
            s.admit(0, 1.0).unwrap();
            let handles: Vec<_> = (0..extra_waiters)
                .map(|i| {
                    let s2 = Arc::clone(&s);
                    let pre_sleep = Duration::from_micros(rng.gen_range(0..300u64));
                    let cost = rng.gen_range(1..100u64) as f64;
                    std::thread::spawn(move || {
                        std::thread::sleep(pre_sleep);
                        s2.admit(2 + i as u64, cost)
                    })
                })
                .collect();
            match s.admit(1, 1.0) {
                Err(ServiceError::TimedOut { waited }) => {
                    assert!(waited >= timeout, "seed {seed}: waited {waited:?}");
                }
                other => panic!("seed {seed}: expected TimedOut, got {other:?}"),
            }
            for h in handles {
                match h.join().unwrap() {
                    Err(ServiceError::TimedOut { waited }) => {
                        assert!(waited >= timeout, "seed {seed}: waited {waited:?}");
                    }
                    other => panic!("seed {seed}: expected TimedOut, got {other:?}"),
                }
            }
            assert_eq!(
                s.load(),
                (1, 0),
                "seed {seed}: timed-out tickets must leave the queue"
            );
            s.release();
        }
    }

    /// Park `n` waiters with the given costs behind an occupied slot, then
    /// release slots one at a time and observe the start order.
    fn start_order(policy: SchedulePolicy, costs: &[f64]) -> Vec<u64> {
        let s = sched(policy, costs.len());
        s.admit(0, 0.0).unwrap();
        let started = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (i, &cost) in costs.iter().enumerate() {
            let seq = (i + 1) as u64;
            let s2 = Arc::clone(&s);
            let started2 = Arc::clone(&started);
            // Stagger spawns so seq order == arrival order.
            while s.load().1 < i {
                std::thread::yield_now();
            }
            handles.push(std::thread::spawn(move || {
                s2.admit(seq, cost).unwrap();
                started2.lock().unwrap().push(seq);
                s2.release();
            }));
        }
        while s.load().1 < costs.len() {
            std::thread::yield_now();
        }
        s.release(); // waiters drain one slot at a time
        for h in handles {
            h.join().unwrap();
        }
        Arc::try_unwrap(started).unwrap().into_inner().unwrap()
    }

    #[test]
    fn fifo_starts_in_arrival_order() {
        assert_eq!(
            start_order(SchedulePolicy::Fifo, &[3.0, 2.0, 1.0]),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn sjf_starts_cheapest_first() {
        assert_eq!(
            start_order(SchedulePolicy::Sjf, &[3.0, 1.0, 2.0]),
            vec![2, 3, 1]
        );
    }

    /// Regression for a missed wakeup with more than one execution slot:
    /// two slots are occupied, two waiters queue, then both slots free in
    /// quick succession. Both `notify_all`s can land before either waiter
    /// runs; the non-chosen waiter then rechecks, sees itself not chosen,
    /// and goes back to sleep — after which only the admitted winner knows
    /// a slot is still free. Without the winner's hand-off notify the
    /// second waiter sleeps until its full queue timeout.
    #[test]
    fn second_free_slot_admits_the_next_waiter_promptly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // 100 seeded schedules: each seed perturbs the slot count, the
        // policy, the waiters' costs and arrival jitter, and — the key
        // lever for this race — the gap between the releases. The missed
        // wakeup reproduced originally when both notifies landed before
        // either waiter woke; varied release gaps explore both that
        // coalesced schedule and the staggered ones around it.
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let slots = rng.gen_range(2..4usize);
            let waiters = slots; // every freed slot must re-admit promptly
            let policy = if rng.gen_range(0..2u32) == 0 {
                SchedulePolicy::Fifo
            } else {
                SchedulePolicy::Sjf
            };
            let s = Arc::new(Scheduler::new(
                slots,
                waiters + 1,
                Duration::from_secs(10),
                policy,
            ));
            for seq in 0..slots as u64 {
                s.admit(seq, 0.0).unwrap();
            }
            let handles: Vec<_> = (0..waiters)
                .map(|i| {
                    let s2 = Arc::clone(&s);
                    let jitter = Duration::from_micros(rng.gen_range(0..200u64));
                    let cost = rng.gen_range(0..50u64) as f64;
                    let seq = (slots + i) as u64;
                    std::thread::spawn(move || {
                        std::thread::sleep(jitter);
                        s2.admit(seq, cost).unwrap();
                    })
                })
                .collect();
            while s.load().1 < waiters {
                std::thread::yield_now();
            }
            let freed = Instant::now();
            for _ in 0..slots {
                s.release();
                let gap = rng.gen_range(0..150u64);
                if gap > 0 {
                    std::thread::sleep(Duration::from_micros(gap));
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(
                freed.elapsed() < Duration::from_secs(5),
                "seed {seed}: a waiter missed its wakeup and slept toward the queue timeout"
            );
            assert_eq!(
                s.load(),
                (waiters, 0),
                "seed {seed}: every waiter must hold a slot"
            );
            for _ in 0..waiters {
                s.release();
            }
        }
    }

    #[test]
    fn policy_parse_round_trips() {
        assert_eq!(SchedulePolicy::parse("fifo"), Some(SchedulePolicy::Fifo));
        assert_eq!(SchedulePolicy::parse("SJF"), Some(SchedulePolicy::Sjf));
        assert_eq!(SchedulePolicy::parse("lifo"), None);
    }
}
