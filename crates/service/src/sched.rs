//! Admission control and tenant-fair scheduling for the query service.
//!
//! The controller enforces three bounds: at most `max_in_flight` queries
//! executing globally, at most `max_queued` waiting globally, and — per
//! tenant — at most `TenantQuota::max_in_flight` executing and
//! `TenantQuota::max_queued` waiting. A submission past the global queue
//! bound is **rejected** ([`ServiceError::Rejected`]); one past its
//! tenant's queue bound gets the typed, retryable
//! [`ServiceError::QuotaExceeded`]; a queued submission that cannot start
//! within `queue_timeout` (or its own deadline, whichever is sooner)
//! **times out** ([`ServiceError::TimedOut`]).
//!
//! When a slot frees, *which* waiting query starts is decided in two
//! steps:
//!
//! 1. **Across tenants** (only when `fair` is on): weighted virtual-time
//!    round-robin. Every grant advances the tenant's virtual clock by
//!    `VTIME_SCALE / weight`; the eligible tenant with the smallest clock
//!    runs next, so a tenant with weight `w` gets a `w`-proportional share
//!    of grants and a flooding tenant cannot starve a trickle tenant — the
//!    trickle tenant's clock is always at (or lifted to) the floor of the
//!    active set, so it is chosen within one round of grants. A tenant
//!    re-activating after idling has its clock lifted to the current
//!    active floor, so banked idle time never converts into a burst.
//! 2. **Within a tenant**: the configured [`SchedulePolicy`] — FIFO
//!    (arrival order) or SJF (shortest estimated cost first, arrival
//!    order breaking ties).
//!
//! With `fair` off, the policy applies across *all* tenants' tickets at
//! once — which is exactly the paper-service behavior before tenancy, and
//! also the pinned starvation counter-example: under SJF a flood of
//! cheap queries starves an expensive one forever (see
//! `unfair_sjf_starves_the_expensive_tenant_fair_mode_does_not`).
//!
//! New arrivals never barge past a startable waiter: a submission is only
//! fast-pathed into a slot when no queued ticket could start right now.

use crate::{ServiceError, TenantQuota};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which waiting query (within one tenant, or globally with fairness off)
/// runs when an execution slot frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Arrival order.
    #[default]
    Fifo,
    /// Shortest estimated cost first; arrival order breaks ties.
    Sjf,
}

impl SchedulePolicy {
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::Sjf => "sjf",
        }
    }

    /// Parse the bench-driver spelling.
    pub fn parse(s: &str) -> Option<SchedulePolicy> {
        match s.to_ascii_lowercase().as_str() {
            "fifo" => Some(SchedulePolicy::Fifo),
            "sjf" => Some(SchedulePolicy::Sjf),
            _ => None,
        }
    }
}

/// Virtual-time advance per grant at weight 1. A power of two so the
/// per-grant division by the weight stays exact for power-of-two weights.
const VTIME_SCALE: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct Ticket {
    seq: u64,
    cost: f64,
}

#[derive(Debug)]
struct TenantState {
    name: String,
    quota: TenantQuota,
    in_flight: usize,
    queue: Vec<Ticket>,
    /// Weighted virtual clock: advanced by `VTIME_SCALE / weight` per
    /// grant, lifted to the active floor on re-activation.
    vtime: u64,
}

impl TenantState {
    fn active(&self) -> bool {
        self.in_flight > 0 || !self.queue.is_empty()
    }

    /// Whether this tenant could start another query right now.
    fn below_cap(&self) -> bool {
        self.in_flight < self.quota.max_in_flight.max(1)
    }
}

#[derive(Debug)]
struct State {
    in_flight: usize,
    /// Total queued across tenants (== sum of queue lens).
    queued: usize,
    /// Global virtual clock: the largest post-grant tenant clock seen, so
    /// a tenant waking into an otherwise idle scheduler still re-enters
    /// at the level service has reached, not at its stale clock.
    vnow: u64,
    tenants: Vec<TenantState>,
}

/// The clock value a re-activating tenant is lifted to: the smallest
/// clock among the *other* active tenants, falling back to the global
/// clock when nobody else is active.
fn lift_floor(st: &State, tenant: usize) -> u64 {
    st.tenants
        .iter()
        .enumerate()
        .filter(|(i, t)| *i != tenant && t.active())
        .map(|(_, t)| t.vtime)
        .min()
        .unwrap_or(st.vnow)
}

/// The admission controller + tenant-fair scheduler. `admit` blocks the
/// calling client thread (the service is closed-loop: clients are the
/// executors) until a slot is granted or a typed error says why not.
#[derive(Debug)]
pub(crate) struct Scheduler {
    max_in_flight: usize,
    max_queued: usize,
    queue_timeout: Duration,
    policy: SchedulePolicy,
    fair: bool,
    state: Mutex<State>,
    cv: Condvar,
}

/// The pre-registered tenant every legacy (tenant-less) submission runs
/// as. Unlimited quota: the global bounds are the only limits, exactly
/// the pre-tenancy behavior.
#[cfg(test)]
pub(crate) const DEFAULT_TENANT: usize = 0;

impl Scheduler {
    pub fn new(
        max_in_flight: usize,
        max_queued: usize,
        queue_timeout: Duration,
        policy: SchedulePolicy,
        fair: bool,
    ) -> Scheduler {
        let s = Scheduler {
            max_in_flight: max_in_flight.max(1),
            max_queued,
            queue_timeout,
            policy,
            fair,
            state: Mutex::new(State {
                in_flight: 0,
                queued: 0,
                vnow: 0,
                tenants: Vec::new(),
            }),
            cv: Condvar::new(),
        };
        s.add_tenant("default", TenantQuota::unlimited());
        s
    }

    /// Register a tenant; returns its dense index. Idempotent on name
    /// (re-registering updates the quota but keeps index and clock).
    pub fn add_tenant(&self, name: &str, quota: TenantQuota) -> usize {
        let mut st = self.state.lock().expect("scheduler mutex poisoned");
        if let Some(i) = st.tenants.iter().position(|t| t.name == name) {
            st.tenants[i].quota = quota;
            return i;
        }
        st.tenants.push(TenantState {
            name: name.to_string(),
            quota,
            in_flight: 0,
            queue: Vec::new(),
            vtime: 0,
        });
        st.tenants.len() - 1
    }

    pub fn tenant_name(&self, tenant: usize) -> String {
        let st = self.state.lock().expect("scheduler mutex poisoned");
        st.tenants[tenant].name.clone()
    }

    pub fn tenant_count(&self) -> usize {
        let st = self.state.lock().expect("scheduler mutex poisoned");
        st.tenants.len()
    }

    /// The best ticket of `tenant`'s queue under the intra-tenant policy.
    fn best_of(&self, queue: &[Ticket]) -> Option<Ticket> {
        match self.policy {
            SchedulePolicy::Fifo => queue.iter().min_by_key(|t| t.seq).copied(),
            SchedulePolicy::Sjf => queue
                .iter()
                .min_by(|a, b| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.seq.cmp(&b.seq))
                })
                .copied(),
        }
    }

    /// The `(tenant, seq)` the scheduler would start next, respecting
    /// per-tenant in-flight caps — `None` when no queued ticket can start.
    /// The *global* slot check is the caller's.
    fn chosen(&self, st: &State) -> Option<(usize, u64)> {
        if self.fair {
            // Across tenants: smallest virtual clock among those with a
            // queued ticket and a free tenant slot; ties break toward the
            // oldest head ticket so equal-clock tenants alternate stably.
            st.tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.queue.is_empty() && t.below_cap())
                .min_by_key(|(_, t)| {
                    let head = self.best_of(&t.queue).map(|b| b.seq).unwrap_or(u64::MAX);
                    (t.vtime, head)
                })
                .and_then(|(i, t)| self.best_of(&t.queue).map(|b| (i, b.seq)))
        } else {
            // No fairness: one flat queue under the policy (per-tenant
            // in-flight caps still apply).
            let mut best: Option<(usize, Ticket)> = None;
            for (i, t) in st.tenants.iter().enumerate() {
                if !t.below_cap() {
                    continue;
                }
                if let Some(b) = self.best_of(&t.queue) {
                    let better = match (&best, self.policy) {
                        (None, _) => true,
                        (Some((_, cur)), SchedulePolicy::Fifo) => b.seq < cur.seq,
                        (Some((_, cur)), SchedulePolicy::Sjf) => {
                            b.cost < cur.cost || (b.cost == cur.cost && b.seq < cur.seq)
                        }
                    };
                    if better {
                        best = Some((i, b));
                    }
                }
            }
            best.map(|(i, b)| (i, b.seq))
        }
    }

    /// Grant a slot to `tenant`: bump both in-flight counts and advance
    /// the tenant's virtual clock by its weighted quantum. A tenant that
    /// was inactive (the fast-path case — the queued path lifts at
    /// enqueue) is first lifted to the floor so idling banks no credit.
    fn grant(&self, st: &mut State, tenant: usize) {
        if !st.tenants[tenant].active() {
            let floor = lift_floor(st, tenant);
            let t = &mut st.tenants[tenant];
            t.vtime = t.vtime.max(floor);
        }
        st.in_flight += 1;
        let t = &mut st.tenants[tenant];
        t.in_flight += 1;
        t.vtime += VTIME_SCALE / t.quota.weight.max(1);
        st.vnow = st.vnow.max(t.vtime);
    }

    /// Wait for an execution slot. Returns how long the query queued.
    /// `cost` is the scheduler's estimate for this query (ignored under
    /// FIFO); `seq` must be unique and monotone with submission order.
    /// `deadline` caps the queue wait below `queue_timeout` when set —
    /// the protocol's deadline hook.
    pub fn admit(
        &self,
        tenant: usize,
        seq: u64,
        cost: f64,
        deadline: Option<Duration>,
    ) -> Result<Duration, ServiceError> {
        let timeout = crate::tenant::effective_timeout(self.queue_timeout, deadline);
        let start = Instant::now();
        let mut st = self.state.lock().expect("scheduler mutex poisoned");
        assert!(tenant < st.tenants.len(), "unregistered tenant {tenant}");
        // Fast path only when nobody startable is waiting — no barging —
        // and both the global and the tenant's own in-flight caps have
        // room.
        if st.in_flight < self.max_in_flight
            && st.tenants[tenant].below_cap()
            && self.chosen(&st).is_none()
        {
            self.grant(&mut st, tenant);
            return Ok(Duration::ZERO);
        }
        // Per-tenant queue quota first: the typed, retryable signal that
        // *this tenant* is over its share (the global queue may be near
        // empty).
        {
            let t = &st.tenants[tenant];
            if t.queue.len() >= t.quota.max_queued {
                return Err(ServiceError::QuotaExceeded {
                    tenant: t.name.clone(),
                    queued: t.queue.len(),
                    max_queued: t.quota.max_queued,
                });
            }
        }
        if st.queued >= self.max_queued {
            return Err(ServiceError::Rejected {
                queued: st.queued,
                max_queued: self.max_queued,
            });
        }
        // Re-activation: a tenant with no pending work has its virtual
        // clock lifted to the active floor, so idling never banks credit
        // it could later spend as a burst.
        if !st.tenants[tenant].active() {
            let floor = lift_floor(&st, tenant);
            let t = &mut st.tenants[tenant];
            t.vtime = t.vtime.max(floor);
        }
        st.tenants[tenant].queue.push(Ticket { seq, cost });
        st.queued += 1;
        loop {
            if st.in_flight < self.max_in_flight && self.chosen(&st) == Some((tenant, seq)) {
                st.tenants[tenant].queue.retain(|t| t.seq != seq);
                st.queued -= 1;
                self.grant(&mut st, tenant);
                // With slots still free and a startable waiter still
                // queued, the next chosen waiter may have rechecked before
                // we left the queue (it saw itself not chosen and went
                // back to sleep). Nobody else will notify it — a release()
                // only fires when a query *finishes* — so wake the queue
                // again or that waiter sleeps until its full queue timeout.
                if st.in_flight < self.max_in_flight && self.chosen(&st).is_some() {
                    self.cv.notify_all();
                }
                return Ok(start.elapsed());
            }
            let waited = start.elapsed();
            if waited >= timeout {
                st.tenants[tenant].queue.retain(|t| t.seq != seq);
                st.queued -= 1;
                // Our departure may make a different waiter eligible.
                self.cv.notify_all();
                return Err(ServiceError::TimedOut { waited });
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, timeout - waited)
                .expect("scheduler mutex poisoned");
            st = guard;
        }
    }

    /// Give an execution slot back (the query finished or failed).
    pub fn release(&self, tenant: usize) {
        let mut st = self.state.lock().expect("scheduler mutex poisoned");
        debug_assert!(st.in_flight > 0, "release without admit");
        st.in_flight = st.in_flight.saturating_sub(1);
        let t = &mut st.tenants[tenant];
        debug_assert!(t.in_flight > 0, "tenant release without admit");
        t.in_flight = t.in_flight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    /// (in-flight, queued) right now — observability for the driver.
    pub fn load(&self) -> (usize, usize) {
        let st = self.state.lock().expect("scheduler mutex poisoned");
        (st.in_flight, st.queued)
    }

    /// (in-flight, queued) for one tenant.
    pub fn tenant_load(&self, tenant: usize) -> (usize, usize) {
        let st = self.state.lock().expect("scheduler mutex poisoned");
        let t = &st.tenants[tenant];
        (t.in_flight, t.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sched(policy: SchedulePolicy, max_queued: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(
            1,
            max_queued,
            Duration::from_secs(5),
            policy,
            true,
        ))
    }

    #[test]
    fn fast_path_counts_in_flight() {
        let s = sched(SchedulePolicy::Fifo, 4);
        assert_eq!(s.admit(0, 0, 1.0, None).unwrap(), Duration::ZERO);
        assert_eq!(s.load(), (1, 0));
        assert_eq!(s.tenant_load(0), (1, 0));
        s.release(0);
        assert_eq!(s.load(), (0, 0));
    }

    #[test]
    fn full_queue_rejects() {
        let s = sched(SchedulePolicy::Fifo, 0);
        s.admit(0, 0, 1.0, None).unwrap();
        match s.admit(0, 1, 1.0, None) {
            Err(ServiceError::Rejected { queued, max_queued }) => {
                assert_eq!((queued, max_queued), (0, 0));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        s.release(0);
    }

    #[test]
    fn tenant_queue_quota_exceeds_with_typed_error() {
        let s = sched(SchedulePolicy::Fifo, 64);
        let limited = s.add_tenant(
            "limited",
            TenantQuota {
                weight: 1,
                max_in_flight: 1,
                max_queued: 0,
            },
        );
        s.admit(limited, 0, 1.0, None).unwrap(); // occupies the only slot
        match s.admit(limited, 1, 1.0, None) {
            Err(ServiceError::QuotaExceeded {
                tenant,
                queued,
                max_queued,
            }) => {
                assert_eq!(tenant, "limited");
                assert_eq!((queued, max_queued), (0, 0));
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        s.release(limited);
        assert_eq!(s.load(), (0, 0));
    }

    /// A tenant at its own in-flight cap queues even while global slots
    /// idle — and an *other* tenant's arrival still fast-paths past it
    /// (the capped waiter is not startable, so this is not barging).
    #[test]
    fn tenant_in_flight_cap_blocks_only_its_own() {
        let s = Arc::new(Scheduler::new(
            4,
            16,
            Duration::from_secs(5),
            SchedulePolicy::Fifo,
            true,
        ));
        let capped = s.add_tenant(
            "capped",
            TenantQuota {
                weight: 1,
                max_in_flight: 1,
                max_queued: 8,
            },
        );
        s.admit(capped, 0, 1.0, None).unwrap();
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.admit(capped, 1, 1.0, None));
        while s.tenant_load(capped).1 < 1 {
            std::thread::yield_now();
        }
        // Global slots idle, capped tenant queued: another tenant starts
        // immediately.
        assert_eq!(s.admit(0, 2, 1.0, None).unwrap(), Duration::ZERO);
        s.release(capped); // frees the capped tenant's slot -> waiter runs
        waiter.join().unwrap().unwrap();
        assert_eq!(s.tenant_load(capped), (1, 0));
        s.release(capped);
        s.release(0);
        assert_eq!(s.load(), (0, 0));
    }

    /// Queue timeouts across 100 seeded schedules: each seed perturbs the
    /// timeout length, the scheduling policy, how many extra waiters pile
    /// up behind the stuck one, and when they arrive. Whatever the
    /// interleaving, every waiter must surface `TimedOut` (the slot holder
    /// never releases), report `waited >= timeout`, and leave the queue
    /// empty — a ticket leaked by one schedule would fail the load check.
    #[test]
    fn queued_submission_times_out() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let timeout = Duration::from_micros(rng.gen_range(500..4000u64));
            let policy = if rng.gen_range(0..2u32) == 0 {
                SchedulePolicy::Fifo
            } else {
                SchedulePolicy::Sjf
            };
            let extra_waiters = rng.gen_range(0..3usize);
            let s = Arc::new(Scheduler::new(1, 4, timeout, policy, seed % 2 == 0));
            s.admit(0, 0, 1.0, None).unwrap();
            let handles: Vec<_> = (0..extra_waiters)
                .map(|i| {
                    let s2 = Arc::clone(&s);
                    let pre_sleep = Duration::from_micros(rng.gen_range(0..300u64));
                    let cost = rng.gen_range(1..100u64) as f64;
                    std::thread::spawn(move || {
                        std::thread::sleep(pre_sleep);
                        s2.admit(0, 2 + i as u64, cost, None)
                    })
                })
                .collect();
            match s.admit(0, 1, 1.0, None) {
                Err(ServiceError::TimedOut { waited }) => {
                    assert!(waited >= timeout, "seed {seed}: waited {waited:?}");
                }
                other => panic!("seed {seed}: expected TimedOut, got {other:?}"),
            }
            for h in handles {
                match h.join().unwrap() {
                    Err(ServiceError::TimedOut { waited }) => {
                        assert!(waited >= timeout, "seed {seed}: waited {waited:?}");
                    }
                    other => panic!("seed {seed}: expected TimedOut, got {other:?}"),
                }
            }
            assert_eq!(
                s.load(),
                (1, 0),
                "seed {seed}: timed-out tickets must leave the queue"
            );
            s.release(0);
        }
    }

    /// A deadline below the queue timeout caps the wait — the protocol's
    /// deadline hook.
    #[test]
    fn deadline_caps_the_queue_wait() {
        let s = Arc::new(Scheduler::new(
            1,
            4,
            Duration::from_secs(30),
            SchedulePolicy::Fifo,
            true,
        ));
        s.admit(0, 0, 1.0, None).unwrap();
        let deadline = Duration::from_millis(20);
        let t0 = Instant::now();
        match s.admit(0, 1, 1.0, Some(deadline)) {
            Err(ServiceError::TimedOut { waited }) => {
                assert!(waited >= deadline);
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "deadline did not cap the 30s queue timeout"
                );
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        s.release(0);
    }

    /// Park `n` waiters with the given costs behind an occupied slot, then
    /// release slots one at a time and observe the start order.
    fn start_order(policy: SchedulePolicy, costs: &[f64]) -> Vec<u64> {
        let s = sched(policy, costs.len());
        s.admit(0, 0, 0.0, None).unwrap();
        let started = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (i, &cost) in costs.iter().enumerate() {
            let seq = (i + 1) as u64;
            let s2 = Arc::clone(&s);
            let started2 = Arc::clone(&started);
            // Stagger spawns so seq order == arrival order.
            while s.load().1 < i {
                std::thread::yield_now();
            }
            handles.push(std::thread::spawn(move || {
                s2.admit(0, seq, cost, None).unwrap();
                started2.lock().unwrap().push(seq);
                s2.release(0);
            }));
        }
        while s.load().1 < costs.len() {
            std::thread::yield_now();
        }
        s.release(0); // waiters drain one slot at a time
        for h in handles {
            h.join().unwrap();
        }
        Arc::try_unwrap(started).unwrap().into_inner().unwrap()
    }

    #[test]
    fn fifo_starts_in_arrival_order() {
        assert_eq!(
            start_order(SchedulePolicy::Fifo, &[3.0, 2.0, 1.0]),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn sjf_starts_cheapest_first() {
        assert_eq!(
            start_order(SchedulePolicy::Sjf, &[3.0, 1.0, 2.0]),
            vec![2, 3, 1]
        );
    }

    /// Regression for a missed wakeup with more than one execution slot:
    /// two slots are occupied, two waiters queue, then both slots free in
    /// quick succession. Both `notify_all`s can land before either waiter
    /// runs; the non-chosen waiter then rechecks, sees itself not chosen,
    /// and goes back to sleep — after which only the admitted winner knows
    /// a slot is still free. Without the winner's hand-off notify the
    /// second waiter sleeps until its full queue timeout.
    #[test]
    fn second_free_slot_admits_the_next_waiter_promptly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // 100 seeded schedules: each seed perturbs the slot count, the
        // policy, fairness on/off, the waiters' costs and arrival jitter,
        // and — the key lever for this race — the gap between the
        // releases.
        for seed in 0..100u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let slots = rng.gen_range(2..4usize);
            let waiters = slots; // every freed slot must re-admit promptly
            let policy = if rng.gen_range(0..2u32) == 0 {
                SchedulePolicy::Fifo
            } else {
                SchedulePolicy::Sjf
            };
            let s = Arc::new(Scheduler::new(
                slots,
                waiters + 1,
                Duration::from_secs(10),
                policy,
                seed % 2 == 0,
            ));
            // spread the holders and waiters across two tenants so the
            // fair path's tenant selection is exercised too
            let other = s.add_tenant("other", TenantQuota::unlimited());
            for seq in 0..slots as u64 {
                s.admit((seq % 2) as usize * other, seq, 0.0, None).unwrap();
            }
            let handles: Vec<_> = (0..waiters)
                .map(|i| {
                    let s2 = Arc::clone(&s);
                    let jitter = Duration::from_micros(rng.gen_range(0..200u64));
                    let cost = rng.gen_range(0..50u64) as f64;
                    let seq = (slots + i) as u64;
                    let tenant = (i % 2) * other;
                    std::thread::spawn(move || {
                        std::thread::sleep(jitter);
                        s2.admit(tenant, seq, cost, None).unwrap();
                        tenant
                    })
                })
                .collect();
            while s.load().1 < waiters {
                std::thread::yield_now();
            }
            let freed = Instant::now();
            for seq in 0..slots as u64 {
                s.release((seq % 2) as usize * other);
                let gap = rng.gen_range(0..150u64);
                if gap > 0 {
                    std::thread::sleep(Duration::from_micros(gap));
                }
            }
            let mut held = Vec::new();
            for h in handles {
                held.push(h.join().unwrap());
            }
            assert!(
                freed.elapsed() < Duration::from_secs(5),
                "seed {seed}: a waiter missed its wakeup and slept toward the queue timeout"
            );
            assert_eq!(
                s.load(),
                (waiters, 0),
                "seed {seed}: every waiter must hold a slot"
            );
            for tenant in held {
                s.release(tenant);
            }
        }
    }

    /// Drive the selection function directly through a flood-vs-victim
    /// schedule: one slot, the flooding tenant always has a cheap ticket
    /// queued (replenished after every grant), the victim tenant has one
    /// expensive ticket. This is the pinned starvation counter-example —
    /// with fairness off, SJF picks the flood's cheap ticket on every one
    /// of 10 000 grants and the victim never runs; with weighted
    /// round-robin on, the victim is chosen within two grants.
    #[test]
    fn unfair_sjf_starves_the_expensive_tenant_fair_mode_does_not() {
        let grants_until_victim = |fair: bool, max_grants: usize| -> Option<usize> {
            let s = Scheduler::new(1, 64, Duration::from_secs(5), SchedulePolicy::Sjf, fair);
            let flood = DEFAULT_TENANT;
            let victim = s.add_tenant("victim", TenantQuota::unlimited());
            let mut st = s.state.lock().unwrap();
            let mut next_seq = 0u64;
            let push = |st: &mut State, tenant: usize, cost: f64, seq: &mut u64| {
                st.tenants[tenant].queue.push(Ticket { seq: *seq, cost });
                st.queued += 1;
                *seq += 1;
            };
            push(&mut st, flood, 0.0, &mut next_seq);
            push(&mut st, flood, 0.0, &mut next_seq);
            push(&mut st, victim, 1e9, &mut next_seq);
            for grant_no in 0..max_grants {
                let (tenant, seq) = s.chosen(&st).expect("queues are never empty");
                st.tenants[tenant].queue.retain(|t| t.seq != seq);
                st.queued -= 1;
                s.grant(&mut st, tenant);
                if tenant == victim {
                    return Some(grant_no);
                }
                // the granted query "finishes" instantly and the flood
                // replenishes its queue before the next grant
                st.in_flight -= 1;
                st.tenants[tenant].in_flight -= 1;
                push(&mut st, flood, 0.0, &mut next_seq);
            }
            None
        };
        assert_eq!(
            grants_until_victim(false, 10_000),
            None,
            "unfair SJF must starve the expensive tenant (the counter-example)"
        );
        let g = grants_until_victim(true, 10_000).expect("fair mode must schedule the victim");
        assert!(g <= 2, "fair mode chose the victim after {g} grants");
    }

    /// Weighted share: tenants at weight 3 and 1 with always-full queues
    /// split 1000 grants 3:1 (±1 grant of rounding).
    #[test]
    fn weights_split_grants_proportionally() {
        let s = Scheduler::new(1, 64, Duration::from_secs(5), SchedulePolicy::Fifo, true);
        let heavy = s.add_tenant(
            "heavy",
            TenantQuota {
                weight: 3,
                ..TenantQuota::unlimited()
            },
        );
        let light = s.add_tenant("light", TenantQuota::unlimited());
        let mut st = s.state.lock().unwrap();
        let mut next_seq = 0u64;
        let mut counts = [0usize; 2];
        for tenant in [heavy, light] {
            for _ in 0..2 {
                st.tenants[tenant].queue.push(Ticket {
                    seq: next_seq,
                    cost: 1.0,
                });
                st.queued += 1;
                next_seq += 1;
            }
        }
        for _ in 0..1000 {
            let (tenant, seq) = s.chosen(&st).expect("queues stay full");
            st.tenants[tenant].queue.retain(|t| t.seq != seq);
            s.grant(&mut st, tenant);
            st.in_flight -= 1;
            st.tenants[tenant].in_flight -= 1;
            counts[if tenant == heavy { 0 } else { 1 }] += 1;
            st.tenants[tenant].queue.push(Ticket {
                seq: next_seq,
                cost: 1.0,
            });
            next_seq += 1;
        }
        assert!(
            (counts[0] as i64 - 750).abs() <= 1,
            "weight-3 tenant got {} of 1000 grants, expected ~750",
            counts[0]
        );
    }

    /// Re-activation lifts the clock to the active floor: a tenant that
    /// idled through 100 grants does not get a 100-grant burst when it
    /// wakes — its first grant comes at parity with the active tenant.
    #[test]
    fn idle_tenant_banks_no_credit() {
        let s = Scheduler::new(2, 64, Duration::from_secs(5), SchedulePolicy::Fifo, true);
        let sleeper = s.add_tenant("sleeper", TenantQuota::unlimited());
        // the default tenant runs 100 queries while the sleeper idles
        for seq in 0..100 {
            s.admit(DEFAULT_TENANT, seq, 1.0, None).unwrap();
            s.release(DEFAULT_TENANT);
        }
        // sleeper wakes: its clock is lifted to the floor, so after its
        // first grant the two clocks differ by at most one quantum
        s.admit(sleeper, 100, 1.0, None).unwrap();
        s.release(sleeper);
        let st = s.state.lock().unwrap();
        let d = st.tenants[DEFAULT_TENANT].vtime as i64 - st.tenants[sleeper].vtime as i64;
        assert!(
            d.unsigned_abs() <= VTIME_SCALE,
            "sleeper woke {d} virtual ticks behind — banked idle credit"
        );
    }

    #[test]
    fn policy_parse_round_trips() {
        assert_eq!(SchedulePolicy::parse("fifo"), Some(SchedulePolicy::Fifo));
        assert_eq!(SchedulePolicy::parse("SJF"), Some(SchedulePolicy::Sjf));
        assert_eq!(SchedulePolicy::parse("lifo"), None);
    }
}
