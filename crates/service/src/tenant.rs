//! Tenant identity and per-tenant admission quotas.
//!
//! A tenant is the unit of isolation the front door authenticates: each
//! one gets its own admission quota (in-flight and queue-depth caps on
//! top of the service's global bounds), a weighted share of the
//! scheduler's grants, its own latency histograms and `svc.tenant.<name>.*`
//! counters, and a private region of the fabric namespace space — session
//! namespaces are `((tenant_index + 1) << 32) | sequence`, which keeps
//! every tenant's sessions disjoint from every other's (and below bit 48,
//! where the adaptive controller's replan sub-namespaces live).

use std::time::Duration;

/// Opaque handle for a registered tenant (a dense index into the
/// scheduler's tenant table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The pre-registered tenant legacy (tenant-less) submissions run as:
    /// unlimited quota, weight 1.
    pub const DEFAULT: TenantId = TenantId(0);

    /// The dense index (also the high half of the tenant's fabric
    /// namespaces, plus one).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-tenant admission limits and scheduling weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Relative share of scheduler grants under fair scheduling (≥ 1).
    pub weight: u64,
    /// Queries this tenant may have executing at once, on top of the
    /// global `max_in_flight`.
    pub max_in_flight: usize,
    /// Queries this tenant may have queued at once; one more gets the
    /// typed, retryable `QuotaExceeded` error.
    pub max_queued: usize,
}

impl TenantQuota {
    /// No per-tenant caps — only the global bounds apply.
    pub fn unlimited() -> TenantQuota {
        TenantQuota {
            weight: 1,
            max_in_flight: usize::MAX,
            max_queued: usize::MAX,
        }
    }

    pub fn with_weight(mut self, weight: u64) -> TenantQuota {
        self.weight = weight.max(1);
        self
    }
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota::unlimited()
    }
}

/// Point-in-time per-tenant accounting, read back by soak drivers and
/// tests (leak checks assert `in_flight == 0 && queued == 0` after a
/// drain).
#[derive(Debug, Clone)]
pub struct TenantLoad {
    pub name: String,
    pub in_flight: usize,
    pub queued: usize,
}

/// One query's deadline, as carried on the wire: caps the queue wait
/// below the service's global `queue_timeout`. Threaded through the
/// protocol now so early-approximate answers can use it later.
pub fn effective_timeout(queue_timeout: Duration, deadline: Option<Duration>) -> Duration {
    match deadline {
        Some(d) => d.min(queue_timeout),
        None => queue_timeout,
    }
}
