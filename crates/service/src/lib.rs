//! The concurrent query service: a multi-tenant layer over one shared
//! [`HybridSystem`].
//!
//! The paper's engine executes one hybrid join at a time; a warehouse
//! serving real traffic runs many concurrently, for many tenants. This
//! crate adds the serving layer without touching the join algorithms:
//!
//! * **Admission + scheduling** (the `sched` module): bounded in-flight
//!   executions, bounded queue, typed [`ServiceError::Rejected`] /
//!   [`ServiceError::TimedOut`] errors, FIFO or
//!   shortest-estimated-cost-first ordering. Cost estimates come from the
//!   existing sampling/cost-model path, and the advisor picks each query's
//!   algorithm unless the request forces one.
//! * **Tenants** (the `tenant` module): [`QueryService::register_tenant`]
//!   creates an isolation domain with its own [`TenantQuota`] — per-tenant
//!   in-flight and queue-depth caps on top of the global bounds (the
//!   typed, retryable [`ServiceError::QuotaExceeded`] fires past the
//!   latter) — a weighted share of scheduler grants (deficit round-robin
//!   over virtual time, so one tenant's flood cannot starve another), its
//!   own latency histograms and `svc.tenant.<name>.*` counters, and a
//!   private region of fabric namespaces.
//! * **Memory admission**: when the shared system's buffer pool is bounded
//!   (`HYBRID_MEM_BUDGET` / `SystemConfig::mem_budget_bytes`), every
//!   admitted query reserves an even share (`total / max_in_flight`) for
//!   its lifetime and its joins run under that budget — spilling when they
//!   must, never over-committing the pool.
//! * **Per-query isolation**: every admitted query executes on a
//!   [`HybridSystem::session`] — fresh metrics registry, fresh tracer, and
//!   a private fabric namespace — so concurrent queries can never
//!   interleave counters, spans, or shuffle streams. Fabric traffic is
//!   dual-metered: the root registry's `net.cross.*` / `net.intra_hdfs.*`
//!   totals stay the exact sum over all sessions.
//! * **Cross-query caches**: serialized `BF_DB` Bloom filters (shared via
//!   the system, `svc.cache.bloom.*`) and final results
//!   ([`ResultCache`], `svc.cache.result.*`), both LRU-bounded and
//!   invalidated when a table is rewritten through the service's load
//!   methods.
//! * **Latency accounting**: lock-free [`Histogram`]s for total, queue and
//!   execution latency — global and per tenant — with mergeable snapshots
//!   and p50/p95/p99.
//!
//! The service is *closed-loop*: [`QueryService::submit_as`] runs on the
//! calling client thread (queueing blocks it), which is exactly the shape
//! of the framed-TCP front end in `crates/server` (one connection handler
//! thread per client) and of the `svc_bench`/`svc_soak` drivers in
//! `crates/bench`.

mod result_cache;
mod sched;
mod tenant;

pub use result_cache::{CachedResult, GenSnapshot, ResultCache};
pub use sched::SchedulePolicy;
pub use tenant::{TenantId, TenantLoad, TenantQuota};

use hybrid_common::batch::Batch;
use hybrid_common::error::HybridError;
use hybrid_common::metrics::{
    Histogram, HistogramSnapshot, HistogramVec, Metrics, MetricsSnapshot,
};
use hybrid_common::schema::Schema;
use hybrid_core::advisor::{advise, estimated_costs};
use hybrid_core::stats::JoinSummary;
use hybrid_core::{
    run, run_adaptive, run_star, sample_stats, HybridQuery, HybridSystem, JoinAlgorithm,
    MultiwayPlanner, StarQuery,
};
use parking_lot::{RwLock, RwLockReadGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a submission did not produce a result.
#[derive(Debug)]
pub enum ServiceError {
    /// The global queue was full at submission time.
    Rejected { queued: usize, max_queued: usize },
    /// The submitting tenant's own queue quota was full. Retryable by
    /// construction: the tenant's earlier submissions drain the quota.
    QuotaExceeded {
        tenant: String,
        queued: usize,
        max_queued: usize,
    },
    /// The query queued longer than the configured timeout (or its own
    /// deadline, when the request carried a tighter one).
    TimedOut { waited: Duration },
    /// Admitted, but execution failed.
    Exec(HybridError),
}

impl ServiceError {
    /// Whether a client should expect a later identical submission to
    /// succeed: load-shedding outcomes (rejections, quota, timeouts) are
    /// transient by nature; an execution error is retryable exactly when
    /// the underlying [`HybridError`] is.
    pub fn retryable(&self) -> bool {
        match self {
            ServiceError::Rejected { .. }
            | ServiceError::QuotaExceeded { .. }
            | ServiceError::TimedOut { .. } => true,
            ServiceError::Exec(e) => retryable(e),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Rejected { queued, max_queued } => {
                write!(f, "rejected: {queued} queued (max {max_queued})")
            }
            ServiceError::QuotaExceeded {
                tenant,
                queued,
                max_queued,
            } => {
                write!(
                    f,
                    "tenant {tenant} over quota: {queued} queued (max {max_queued})"
                )
            }
            ServiceError::TimedOut { waited } => {
                write!(f, "timed out after {waited:?} in queue")
            }
            ServiceError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<HybridError> for ServiceError {
    fn from(e: HybridError) -> ServiceError {
        ServiceError::Exec(e)
    }
}

/// Whether a failed execution is worth re-running: injected faults,
/// disconnected workers, cancellations (always secondary to one of the
/// former inside a single session) and transient network errors are; a
/// config, planning, or data error would fail identically on retry.
/// [`HybridError::MemoryExceeded`] is deliberately absent: a denied
/// reservation against the same pool share denies again, and the join
/// itself never surfaces it — it degrades to spilling instead.
fn retryable(e: &HybridError) -> bool {
    matches!(
        e,
        HybridError::FaultInjected { .. }
            | HybridError::Disconnected { .. }
            | HybridError::Cancelled { .. }
            | HybridError::Net(_)
    )
}

/// Service sizing and policy.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queries executing at once (≥ 1).
    pub max_in_flight: usize,
    /// Queries waiting beyond the in-flight bound; a submission past both
    /// is rejected.
    pub max_queued: usize,
    /// How long a queued query may wait before timing out.
    pub queue_timeout: Duration,
    pub policy: SchedulePolicy,
    /// Weighted round-robin across tenant queues (on by default). Off
    /// reproduces the pre-tenancy scheduler: one flat queue under
    /// `policy`, where a flooding tenant can starve others — the pinned
    /// counter-example in the scheduler tests.
    pub tenant_fair: bool,
    /// Result-cache entries (0 disables result caching).
    pub result_cache_capacity: usize,
    /// Bloom-cache entries (0 disables `BF_DB` caching).
    pub bloom_cache_capacity: usize,
    /// HDFS blocks sampled per cost estimate (the single-query auto path
    /// uses 8; the service defaults lower because it estimates every
    /// submission).
    pub sample_blocks: usize,
    /// Re-executions after a retryable failure (injected fault, worker
    /// disconnection, cancellation, transient network error). Each retry
    /// runs in a *fresh* session namespace, so a seeded chaos plan rolls
    /// new per-delivery decisions instead of replaying the failure.
    pub query_retries: u32,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_in_flight: 4,
            max_queued: 64,
            queue_timeout: Duration::from_secs(30),
            policy: SchedulePolicy::Fifo,
            tenant_fair: true,
            result_cache_capacity: 64,
            bloom_cache_capacity: 32,
            sample_blocks: 4,
            query_retries: 2,
        }
    }
}

/// One query submission.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    pub query: HybridQuery,
    /// Force a specific algorithm; `None` lets the advisor choose from the
    /// sampled estimates.
    pub algorithm: Option<JoinAlgorithm>,
    /// Cap this query's queue wait below the service timeout. Carried on
    /// the wire so over-SLO queries can be cut loose early (and, later,
    /// answered approximately).
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    pub fn new(query: HybridQuery) -> QueryRequest {
        QueryRequest {
            query,
            algorithm: None,
            deadline: None,
        }
    }

    pub fn with_algorithm(query: HybridQuery, algorithm: JoinAlgorithm) -> QueryRequest {
        QueryRequest {
            query,
            algorithm: Some(algorithm),
            deadline: None,
        }
    }

    pub fn with_deadline(mut self, deadline: Duration) -> QueryRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// One star-query submission (multiway engine; see `hybrid_core::multiway`).
#[derive(Debug, Clone)]
pub struct StarRequest {
    pub star: StarQuery,
    /// Plan family; `Auto` lets the multiway advisor price cascade vs
    /// hypercube from sampled estimates.
    pub planner: MultiwayPlanner,
    /// Same deadline hook as [`QueryRequest::deadline`].
    pub deadline: Option<Duration>,
}

impl StarRequest {
    pub fn new(star: StarQuery) -> StarRequest {
        StarRequest {
            star,
            planner: MultiwayPlanner::Auto,
            deadline: None,
        }
    }
}

/// A completed query with its latency accounting.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Final `(group, agg…)` batch, sorted by group key.
    pub result: Arc<Batch>,
    /// The algorithm that produced the result (for a cache hit: the one
    /// that produced the cached entry).
    pub algorithm: JoinAlgorithm,
    /// Served from the result cache — no execution happened.
    pub from_cache: bool,
    /// The scheduler's cost estimate for `algorithm`, when one exists.
    pub estimated_cost: Option<f64>,
    /// Submission → admission (estimation + queueing).
    pub queue_wait: Duration,
    /// Admission → result.
    pub exec_time: Duration,
    /// Submission → result (what the client observed).
    pub latency: Duration,
    /// Movement digest of this query's own execution (None for hits).
    pub summary: Option<JoinSummary>,
    /// This query's isolated counters (None for hits).
    pub snapshot: Option<MetricsSnapshot>,
}

/// A completed star query.
#[derive(Debug, Clone)]
pub struct StarResponse {
    /// Final `(group, agg…)` batch, sorted by group key.
    pub result: Arc<Batch>,
    /// Whether the run executed the one-shot hypercube shuffle (false:
    /// the cascade of binary joins).
    pub ran_hypercube: bool,
    pub queue_wait: Duration,
    pub exec_time: Duration,
    pub latency: Duration,
    pub summary: Option<JoinSummary>,
    pub snapshot: Option<MetricsSnapshot>,
}

/// The multi-tenant query service. All methods take `&self`; one instance
/// is shared across client threads.
pub struct QueryService {
    root: RwLock<HybridSystem>,
    cfg: ServiceConfig,
    /// Handle to the root system's registry: service-level counters
    /// (`svc.*`), cache counters, and the global fabric totals live here.
    metrics: Metrics,
    results: ResultCache,
    sched: sched::Scheduler,
    /// Monotone submission sequence; its low 32 bits are the low half of
    /// each query's fabric namespace.
    next_seq: AtomicU64,
    latency_us: Histogram,
    queue_us: Histogram,
    exec_us: Histogram,
    tenant_latency_us: HistogramVec,
    tenant_queue_us: HistogramVec,
    tenant_exec_us: HistogramVec,
}

impl QueryService {
    /// Wrap `system` in a service. Loaded tables carry over; the Bloom
    /// cache is enabled on the system per `cfg`. The `default` tenant
    /// ([`TenantId::DEFAULT`], unlimited quota) is pre-registered.
    pub fn new(mut system: HybridSystem, cfg: ServiceConfig) -> QueryService {
        system.enable_bloom_cache(cfg.bloom_cache_capacity);
        let metrics = system.metrics.clone();
        for name in [
            "svc.submitted",
            "svc.completed",
            "svc.rejected",
            "svc.quota_rejected",
            "svc.timed_out",
            "svc.failed",
            "svc.retries",
            "svc.replans",
            "svc.replan_considered",
        ] {
            metrics.register(name);
        }
        let results = ResultCache::new(
            cfg.result_cache_capacity,
            metrics.clone(),
            system.table_gens.clone(),
        );
        let sched = sched::Scheduler::new(
            cfg.max_in_flight,
            cfg.max_queued,
            cfg.queue_timeout,
            cfg.policy,
            cfg.tenant_fair,
        );
        let svc = QueryService {
            root: RwLock::new(system),
            cfg,
            metrics,
            results,
            sched,
            next_seq: AtomicU64::new(0),
            latency_us: Histogram::new(),
            queue_us: Histogram::new(),
            exec_us: Histogram::new(),
            tenant_latency_us: HistogramVec::new(),
            tenant_queue_us: HistogramVec::new(),
            tenant_exec_us: HistogramVec::new(),
        };
        svc.register_tenant_counters("default");
        svc
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Register (or re-quota) a tenant by name; idempotent on the name.
    /// The returned [`TenantId`] is what [`QueryService::submit_as`] and
    /// the framed-TCP front end authenticate connections onto.
    pub fn register_tenant(&self, name: &str, quota: TenantQuota) -> TenantId {
        let id = self.sched.add_tenant(name, quota);
        self.register_tenant_counters(name);
        TenantId(id)
    }

    fn register_tenant_counters(&self, name: &str) {
        for c in [
            "submitted",
            "completed",
            "rejected",
            "quota_rejected",
            "timed_out",
            "failed",
        ] {
            self.metrics.register(&format!("svc.tenant.{name}.{c}"));
        }
    }

    /// Registered tenant count (including `default`).
    pub fn tenant_count(&self) -> usize {
        self.sched.tenant_count()
    }

    pub fn tenant_name(&self, tenant: TenantId) -> String {
        self.sched.tenant_name(tenant.0)
    }

    /// (in-flight, queued) for one tenant — the soak's per-tenant leak
    /// check reads this after a drain (both must be 0).
    pub fn tenant_load(&self, tenant: TenantId) -> TenantLoad {
        let (in_flight, queued) = self.sched.tenant_load(tenant.0);
        TenantLoad {
            name: self.sched.tenant_name(tenant.0),
            in_flight,
            queued,
        }
    }

    /// The root registry: `svc.*` counters, cache hit/miss/eviction
    /// counters, and global `net.*` totals (for fabric-carried link
    /// classes, the exact sum over all sessions).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Read access to the shared system (reference runs, test assertions).
    pub fn system(&self) -> RwLockReadGuard<'_, HybridSystem> {
        self.root.read()
    }

    /// (in-flight, queued) right now.
    pub fn load(&self) -> (usize, usize) {
        self.sched.load()
    }

    /// Total submission→result latency distribution, in microseconds.
    /// Every completion — cache hits included — lands here.
    pub fn latency_histogram(&self) -> HistogramSnapshot {
        self.latency_us.snapshot()
    }

    /// Submission→admission wait distribution of *executions*, in
    /// microseconds. Cache hits bypass admission and are not recorded.
    pub fn queue_histogram(&self) -> HistogramSnapshot {
        self.queue_us.snapshot()
    }

    /// Admission→result execution distribution of *executions*, in
    /// microseconds. Cache hits execute nothing and are not recorded.
    pub fn exec_histogram(&self) -> HistogramSnapshot {
        self.exec_us.snapshot()
    }

    /// Per-tenant submission→result latency snapshots, keyed by tenant
    /// name.
    pub fn tenant_latency_histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.tenant_latency_us.snapshot_all()
    }

    /// Per-tenant queue-wait snapshots, keyed by tenant name.
    pub fn tenant_queue_histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.tenant_queue_us.snapshot_all()
    }

    /// Per-tenant execution-time snapshots, keyed by tenant name.
    pub fn tenant_exec_histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.tenant_exec_us.snapshot_all()
    }

    /// The fabric namespace for attempt `seq` of a `tenant` query: the
    /// tenant index (plus one — namespace 0 is the root) in bits 32..47,
    /// the submission sequence (plus one) in the low 32. Disjoint across
    /// tenants, unique per attempt, and below bit 48 where the adaptive
    /// controller's replan sub-namespaces live (`REPLAN_NS_OFFSET`).
    fn namespace(tenant: TenantId, seq: u64) -> u64 {
        ((tenant.0 as u64 + 1) << 32) | ((seq & 0xFFFF_FFFF) + 1)
    }

    fn tenant_incr(&self, tenant_name: &str, counter: &str) {
        self.metrics
            .add(&format!("svc.tenant.{tenant_name}.{counter}"), 1);
    }

    /// Count an admission failure in the global and per-tenant registries
    /// and pass the error through.
    fn count_admission_error(&self, tenant_name: &str, e: ServiceError) -> ServiceError {
        let counter = match &e {
            ServiceError::Rejected { .. } => "rejected",
            ServiceError::QuotaExceeded { .. } => "quota_rejected",
            ServiceError::TimedOut { .. } => "timed_out",
            ServiceError::Exec(_) => "failed",
        };
        self.metrics.add(&format!("svc.{counter}"), 1);
        self.tenant_incr(tenant_name, counter);
        e
    }

    /// Submit a query as the `default` tenant and block until it
    /// completes (or is rejected or times out). Safe to call from any
    /// number of client threads.
    pub fn submit(&self, req: &QueryRequest) -> Result<QueryResponse, ServiceError> {
        self.submit_as(TenantId::DEFAULT, req)
    }

    /// Submit a query as `tenant` and block until it completes (or is
    /// rejected, over quota, or timed out).
    pub fn submit_as(
        &self,
        tenant: TenantId,
        req: &QueryRequest,
    ) -> Result<QueryResponse, ServiceError> {
        let start = Instant::now();
        let tenant_name = self.sched.tenant_name(tenant.0);
        self.metrics.add("svc.submitted", 1);
        self.tenant_incr(&tenant_name, "submitted");

        // Serve identical queries straight from the result cache — no
        // admission slot is consumed, no execution happens.
        if let Some(hit) = self.results.get(&req.query) {
            let latency = start.elapsed();
            // Hits land in the total-latency histogram only: the queue and
            // exec histograms describe executions, and recording zeros
            // here would dilute their quantiles.
            self.latency_us.record(latency.as_micros() as u64);
            self.tenant_latency_us
                .record(&tenant_name, latency.as_micros() as u64);
            self.metrics.add("svc.completed", 1);
            self.tenant_incr(&tenant_name, "completed");
            return Ok(QueryResponse {
                result: hit.result,
                algorithm: hit.algorithm,
                from_cache: true,
                estimated_cost: None,
                queue_wait: Duration::ZERO,
                exec_time: Duration::ZERO,
                latency,
                summary: None,
                snapshot: None,
            });
        }

        // Estimate cost and pick the algorithm (advisor unless forced).
        // The advisor sees the memory share this query will actually get —
        // a bounded pool is split evenly across the in-flight bound, then
        // across the JEN workers — so a tight budget steers the advice
        // toward plans that spill less. A sampling failure here is a
        // *failure* like any other pre-result error: counted, so the
        // submitted = completed + rejected + quota + timed_out + failed
        // conservation law holds on every path.
        let (algorithm, estimated_cost, est) = {
            let sys = self.root.read();
            let stats = match sample_stats(&sys, &req.query, self.cfg.sample_blocks) {
                Ok(s) => s,
                Err(e) => {
                    drop(sys);
                    return Err(self.count_admission_error(&tenant_name, ServiceError::Exec(e)));
                }
            };
            let mem_pw = sys.mem_pool.total().map(|t| {
                t / self.cfg.max_in_flight.max(1) as u64 / sys.config.jen_workers.max(1) as u64
            });
            let est = stats.to_estimates(&req.query, sys.config.jen_workers, mem_pw);
            drop(sys);
            let costs = estimated_costs(&est);
            let algorithm = req.algorithm.unwrap_or_else(|| advise(&est));
            let cost = costs.iter().find(|(a, _)| *a == algorithm).map(|&(_, c)| c);
            (algorithm, cost, est)
        };

        // Admission: blocks until a slot is granted, a queue bound trips,
        // or the timeout (or the request's tighter deadline) expires.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let queue_wait = match self.sched.admit(
            tenant.0,
            seq,
            estimated_cost.unwrap_or(f64::MAX),
            req.deadline,
        ) {
            Ok(_) => start.elapsed(),
            Err(e) => return Err(self.count_admission_error(&tenant_name, e)),
        };

        let generations = self.results.generations(&req.query);
        let exec_start = Instant::now();
        let run_result = self.execute(tenant, seq, |session| {
            // With `replan_threshold` set, the session run goes through
            // the adaptive controller armed with the same sampled
            // estimates the scheduler priced the query with — one
            // admission slot and one memory grant cover the whole
            // attempt, mid-query restart included. Threshold unset is
            // plain `run`, byte for byte.
            if session.config.replan_threshold.is_some() {
                run_adaptive(session, &req.query, algorithm, &est)
            } else {
                run(session, &req.query, algorithm)
            }
        });
        let out = match run_result {
            Ok(out) => out,
            Err(e) => {
                self.metrics.add("svc.failed", 1);
                self.tenant_incr(&tenant_name, "failed");
                return Err(ServiceError::Exec(e));
            }
        };

        // Mirror the session's adaptive-execution counters to the root
        // registry (summed across queries), so fleet-level reports see the
        // replan activity without walking per-query snapshots. The
        // est-error gauges accumulate; divide by executions for a mean.
        for (session_name, root_name) in [
            ("advisor.replans", "svc.replans"),
            ("advisor.replan_considered", "svc.replan_considered"),
            ("advisor.est_error_x1000.scan", "svc.est_error_x1000.scan"),
            ("advisor.est_error_x1000.bloom", "svc.est_error_x1000.bloom"),
            (
                "advisor.est_error_x1000.shuffle",
                "svc.est_error_x1000.shuffle",
            ),
        ] {
            if let Some(&v) = out.snapshot.get(session_name) {
                self.metrics.add(root_name, v);
            }
        }

        let exec_time = exec_start.elapsed();
        let latency = start.elapsed();
        let result = Arc::new(out.result);
        self.results.insert(
            &req.query,
            CachedResult {
                result: Arc::clone(&result),
                algorithm,
            },
            generations,
        );
        self.record_latencies(&tenant_name, latency, queue_wait, exec_time);
        self.metrics.add("svc.completed", 1);
        self.tenant_incr(&tenant_name, "completed");
        Ok(QueryResponse {
            result,
            algorithm,
            from_cache: false,
            estimated_cost,
            queue_wait,
            exec_time,
            latency,
            summary: Some(out.summary),
            snapshot: Some(out.snapshot),
        })
    }

    /// Submit a star query as `tenant`. Star results are not cached (the
    /// result cache is keyed on two-table fingerprints) and the scheduler
    /// prices them at the maximum — the multiway advisor samples and
    /// plans inside the execution slot.
    pub fn submit_star_as(
        &self,
        tenant: TenantId,
        req: &StarRequest,
    ) -> Result<StarResponse, ServiceError> {
        let start = Instant::now();
        let tenant_name = self.sched.tenant_name(tenant.0);
        self.metrics.add("svc.submitted", 1);
        self.tenant_incr(&tenant_name, "submitted");

        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let queue_wait = match self.sched.admit(tenant.0, seq, f64::MAX, req.deadline) {
            Ok(_) => start.elapsed(),
            Err(e) => return Err(self.count_admission_error(&tenant_name, e)),
        };

        let exec_start = Instant::now();
        let run_result = self.execute(tenant, seq, |session| {
            run_star(session, &req.star, req.planner)
        });
        let out = match run_result {
            Ok(out) => out,
            Err(e) => {
                self.metrics.add("svc.failed", 1);
                self.tenant_incr(&tenant_name, "failed");
                return Err(ServiceError::Exec(e));
            }
        };

        let exec_time = exec_start.elapsed();
        let latency = start.elapsed();
        let ran_hypercube = out
            .snapshot
            .get("advisor.multiway.ran_hypercube")
            .copied()
            .unwrap_or(0)
            == 1;
        self.record_latencies(&tenant_name, latency, queue_wait, exec_time);
        self.metrics.add("svc.completed", 1);
        self.tenant_incr(&tenant_name, "completed");
        Ok(StarResponse {
            result: Arc::new(out.result),
            ran_hypercube,
            queue_wait,
            exec_time,
            latency,
            summary: Some(out.summary),
            snapshot: Some(out.snapshot),
        })
    }

    fn record_latencies(
        &self,
        tenant_name: &str,
        latency: Duration,
        queue_wait: Duration,
        exec_time: Duration,
    ) {
        self.latency_us.record(latency.as_micros() as u64);
        self.queue_us.record(queue_wait.as_micros() as u64);
        self.exec_us.record(exec_time.as_micros() as u64);
        self.tenant_latency_us
            .record(tenant_name, latency.as_micros() as u64);
        self.tenant_queue_us
            .record(tenant_name, queue_wait.as_micros() as u64);
        self.tenant_exec_us
            .record(tenant_name, exec_time.as_micros() as u64);
    }

    /// Run `body` on a private session while holding an already-granted
    /// admission slot, with the memory-governor reservation and the
    /// retryable-failure loop. Whatever happens — success, typed failure,
    /// retry exhaustion — the session namespace is closed, the memory
    /// grant is returned *before* the slot (a successor admitted by
    /// `release()` reserves immediately; with at most `max_in_flight`
    /// slot-holders each holding at most one `total / max_in_flight`
    /// share, this order guarantees its share is already free), and the
    /// slot is released. Callers therefore can never leak admission state,
    /// whichever error path they take.
    fn execute<F>(
        &self,
        tenant: TenantId,
        seq: u64,
        mut body: F,
    ) -> Result<hybrid_core::stats::RunOutput, HybridError>
    where
        F: FnMut(&mut HybridSystem) -> Result<hybrid_core::stats::RunOutput, HybridError>,
    {
        // Memory admission: each admitted query reserves an even share of
        // the governor's pool for its whole lifetime (retries included).
        // Shares are `total / max_in_flight`, so the scheduler's in-flight
        // bound guarantees the reservations can never over-commit the
        // pool; the denial path still exists (typed
        // [`HybridError::MemoryExceeded`], deliberately *not* retryable —
        // the same reservation would be denied identically) and releases
        // the admission slot. An unbounded pool grants nothing and leaves
        // the session's joins uncapped, exactly as before the governor.
        let mem_grant = {
            let pool = self.root.read().mem_pool.clone();
            match pool.total() {
                Some(total) => {
                    let share = (total / self.cfg.max_in_flight.max(1) as u64).max(1);
                    match pool.reserve(share, &format!("svc-q{seq}")) {
                        Ok(grant) => Some(grant),
                        Err(e) => {
                            self.sched.release(tenant.0);
                            return Err(e);
                        }
                    }
                }
                None => None,
            }
        };

        // Execute on a private session. The root lock is held only while
        // the session is created (a handful of Arc bumps); execution runs
        // entirely on session-owned state. Retries keep the admission
        // slot (the scheduling cost was already paid; re-queueing a retry
        // behind new arrivals would only stretch its latency) but take a
        // fresh sequence number and therefore a fresh fabric namespace:
        // chaos fault decisions are keyed on the namespace, so a retry
        // rolls new per-delivery outcomes instead of deterministically
        // replaying the failure.
        let mut session_seq = seq;
        let mut attempt = 0u32;
        let run_result = loop {
            let result = (|| {
                let mut session = self
                    .root
                    .read()
                    .session(Self::namespace(tenant, session_seq))?;
                // every attempt joins under this query's memory grant
                session.query_budget = mem_grant.clone();
                let out = body(&mut session);
                session.close_session();
                out
            })();
            match result {
                Err(e) if attempt < self.cfg.query_retries && retryable(&e) => {
                    attempt += 1;
                    self.metrics.add("svc.retries", 1);
                    session_seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                }
                other => break other,
            }
        };
        // Hand the memory reservation back *before* the admission slot —
        // see the doc comment for why this order can never deny a
        // successor's reservation.
        drop(mem_grant);
        self.sched.release(tenant.0);
        run_result
    }

    /// Load (or rewrite) a database table through the service: takes the
    /// writer lock, invalidates cached Bloom filters (inside the system)
    /// and cached results over the table.
    pub fn load_db_table(
        &self,
        name: &str,
        dist_col: usize,
        data: Batch,
    ) -> Result<(), HybridError> {
        self.root.write().load_db_table(name, dist_col, data)?;
        self.results.invalidate_table(name);
        Ok(())
    }

    /// Build a covering index on a database table.
    pub fn create_db_index(&self, table: &str, base_cols: &[usize]) -> Result<(), HybridError> {
        self.root.write().create_db_index(table, base_cols)
    }

    /// Load (or rewrite) an HDFS table through the service, invalidating
    /// cached results over it. (`BF_DB` entries only depend on database
    /// tables and survive.)
    pub fn load_hdfs_table(
        &self,
        name: &str,
        format: hybrid_storage::FileFormat,
        schema: Schema,
        data: &Batch,
    ) -> Result<(), HybridError> {
        self.root
            .write()
            .load_hdfs_table(name, format, schema, data)?;
        self.results.invalidate_table(name);
        Ok(())
    }
}
