//! Cross-query cache behavior through the service API: hits are
//! bit-identical to cold runs, eviction is LRU-consistent, and table
//! rewrites force re-execution (all asserted via the hit/miss counters).

use hybrid_core::reference::run_reference;
use hybrid_core::{HybridQuery, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::tables::l_cols;
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_service::{QueryRequest, QueryService, ServiceConfig};
use hybrid_storage::FileFormat;

fn service(cfg: ServiceConfig) -> (QueryService, Workload) {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let mut syscfg = SystemConfig::paper_shape(2, 3);
    syscfg.rows_per_block = 1000;
    let mut sys = HybridSystem::new(syscfg).unwrap();
    w.load_into(&mut sys, FileFormat::Columnar).unwrap();
    (QueryService::new(sys, cfg), w)
}

/// The workload query with a different HDFS-side correlated threshold —
/// same database side (same `BF_DB`), different result.
fn variant(w: &Workload, l_cor: i64) -> HybridQuery {
    use hybrid_common::expr::Expr;
    let mut q = w.query();
    q.hdfs_pred = Expr::col_le(l_cols::COR_PRED, l_cor)
        .and(Expr::col_le(l_cols::IND_PRED, w.thresholds.l_ind));
    q
}

#[test]
fn result_cache_hit_is_bit_identical_to_cold_run() {
    let (svc, w) = service(ServiceConfig::default());
    let req = QueryRequest::new(w.query());
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();

    let cold = svc.submit(&req).unwrap();
    assert!(!cold.from_cache);
    assert_eq!(*cold.result, expected);
    assert!(cold.snapshot.is_some() && cold.summary.is_some());

    let hit = svc.submit(&req).unwrap();
    assert!(hit.from_cache);
    assert_eq!(*hit.result, expected, "hit must be bit-identical");
    assert_eq!(hit.algorithm, cold.algorithm);
    assert!(hit.snapshot.is_none(), "nothing executed on a hit");

    let m = svc.metrics();
    assert_eq!(m.get("svc.cache.result.hits"), 1);
    assert_eq!(m.get("svc.cache.result.misses"), 1);
    assert_eq!(m.get("svc.completed"), 2);
    assert_eq!(svc.latency_histogram().count(), 2);
}

#[test]
fn result_cache_eviction_is_lru_consistent() {
    let cfg = ServiceConfig {
        result_cache_capacity: 2,
        ..ServiceConfig::default()
    };
    let (svc, w) = service(cfg);
    let th = w.thresholds.l_cor;
    let q1 = QueryRequest::new(variant(&w, th));
    let q2 = QueryRequest::new(variant(&w, th - 1));
    let q3 = QueryRequest::new(variant(&w, th - 2));
    let m = svc.metrics().clone();

    svc.submit(&q1).unwrap();
    svc.submit(&q2).unwrap();
    assert_eq!(m.get("svc.cache.result.evictions"), 0);
    svc.submit(&q3).unwrap(); // capacity 2: q1 is the LRU victim
    assert_eq!(m.get("svc.cache.result.evictions"), 1);

    assert!(svc.submit(&q3).unwrap().from_cache, "q3 is resident");
    assert!(svc.submit(&q2).unwrap().from_cache, "q2 is resident");
    let r1 = svc.submit(&q1).unwrap();
    assert!(!r1.from_cache, "evicted entry must re-execute");
    // re-inserting q1 evicts the then-LRU entry (q3)
    assert_eq!(m.get("svc.cache.result.evictions"), 2);
    assert!(!svc.submit(&q3).unwrap().from_cache);
    // every re-execution still returns the exact answer
    assert_eq!(*r1.result, run_reference(&w.t, &w.l, &q1.query).unwrap());
}

#[test]
fn bloom_cache_shared_across_distinct_queries() {
    let (svc, w) = service(ServiceConfig::default());
    let alg = JoinAlgorithm::Repartition { bloom: true };
    let th = w.thresholds.l_cor;
    let q1 = QueryRequest::with_algorithm(variant(&w, th), alg);
    let q2 = QueryRequest::with_algorithm(variant(&w, th - 1), alg);

    let r1 = svc.submit(&q1).unwrap();
    let m = svc.metrics();
    assert_eq!(m.get("svc.cache.bloom.misses"), 1);
    assert_eq!(m.get("svc.cache.bloom.insertions"), 1);

    let r2 = svc.submit(&q2).unwrap();
    assert!(!r2.from_cache, "different query: not a result-cache hit");
    assert_eq!(
        m.get("svc.cache.bloom.hits"),
        1,
        "same database side: BF_DB must be reused"
    );
    assert_eq!(*r1.result, run_reference(&w.t, &w.l, &q1.query).unwrap());
    assert_eq!(*r2.result, run_reference(&w.t, &w.l, &q2.query).unwrap());
}

#[test]
fn table_rewrite_invalidates_both_caches_and_forces_reexecution() {
    let (svc, w) = service(ServiceConfig::default());
    let alg = JoinAlgorithm::Repartition { bloom: true };
    let req = QueryRequest::with_algorithm(w.query(), alg);
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();

    svc.submit(&req).unwrap();
    assert!(svc.submit(&req).unwrap().from_cache);

    // Rewrite T (same data): every cached artifact over T is stale.
    svc.load_db_table("T", hybrid_datagen::tables::t_cols::UNIQ_KEY, w.t.clone())
        .unwrap();
    let m = svc.metrics();
    assert!(m.get("svc.cache.result.invalidations") >= 1);
    assert!(m.get("svc.cache.bloom.invalidations") >= 1);

    let after = svc.submit(&req).unwrap();
    assert!(!after.from_cache, "invalidation must force re-execution");
    assert_eq!(m.get("svc.cache.result.misses"), 2);
    assert_eq!(
        m.get("svc.cache.bloom.misses"),
        2,
        "BF_DB rebuilt after rewrite"
    );
    assert_eq!(*after.result, expected, "same data: same answer");
}

#[test]
fn hdfs_rewrite_invalidates_results_but_keeps_bloom() {
    let (svc, w) = service(ServiceConfig::default());
    let alg = JoinAlgorithm::Repartition { bloom: true };
    let req = QueryRequest::with_algorithm(w.query(), alg);

    svc.submit(&req).unwrap();
    svc.load_hdfs_table(
        "L",
        FileFormat::Columnar,
        hybrid_datagen::tables::l_schema(),
        &w.l,
    )
    .unwrap();
    let m = svc.metrics();
    assert!(m.get("svc.cache.result.invalidations") >= 1);
    assert_eq!(
        m.get("svc.cache.bloom.invalidations"),
        0,
        "BF_DB only depends on the database table"
    );
    let after = svc.submit(&req).unwrap();
    assert!(!after.from_cache);
    assert_eq!(
        m.get("svc.cache.bloom.hits"),
        1,
        "filter survives an L rewrite"
    );
}

#[test]
fn stale_result_insert_is_dropped_after_rewrite() {
    use hybrid_common::cache::TableGenerations;
    use hybrid_common::metrics::Metrics;
    use hybrid_service::{CachedResult, ResultCache};
    use std::sync::Arc;

    let m = Metrics::new();
    let gens = TableGenerations::new();
    let cache = ResultCache::new(4, m.clone(), gens.clone());
    let w = WorkloadSpec::tiny().generate().unwrap();
    let q = w.query();
    let entry = || CachedResult {
        result: Arc::new(w.t.clone()),
        algorithm: JoinAlgorithm::Repartition { bloom: true },
    };

    // A query snapshots the generations, then T is rewritten while it
    // executes: its insert must be dropped, not land post-invalidation.
    let snap = cache.generations(&q);
    gens.bump(&q.db_table);
    assert!(!cache.insert(&q, entry(), snap));
    assert!(cache.get(&q).is_none());
    assert_eq!(m.get("svc.cache.result.stale_inserts"), 1);

    // A fresh snapshot inserts fine; a rewrite of the *HDFS* side also
    // stales in-flight snapshots.
    let snap = cache.generations(&q);
    assert!(cache.insert(&q, entry(), snap));
    gens.bump(&q.hdfs_table);
    assert!(!cache.insert(&q, entry(), snap));
    assert_eq!(m.get("svc.cache.result.stale_inserts"), 2);
}

/// End-to-end TOCTOU regression: rewrites race in-flight executions, and
/// the *last* rewrite deliberately lands while queries are still running.
/// A straggler that read pre-rewrite data (sessions pin the old partitions
/// via `Arc`) finishes after that rewrite's invalidation; without the
/// generation check its insert would poison the result/Bloom caches and
/// every later identical query would be served the pre-rewrite answer.
#[test]
fn concurrent_rewrite_never_poisons_the_caches() {
    use std::sync::Arc;

    let (svc, w) = service(ServiceConfig::default());
    let w2 = {
        let mut spec = WorkloadSpec::tiny();
        spec.seed ^= 0xDEAD_BEEF;
        spec.generate().unwrap()
    };
    let svc = Arc::new(svc);
    let req = QueryRequest::with_algorithm(w.query(), JoinAlgorithm::Repartition { bloom: true });
    let dist = hybrid_datagen::tables::t_cols::UNIQ_KEY;

    let submitter = {
        let svc = Arc::clone(&svc);
        let req = req.clone();
        std::thread::spawn(move || {
            // Mid-rewrite executions may fail or see a torn table; only
            // the post-quiesce answers below are asserted.
            for _ in 0..10 {
                let _ = svc.submit(&req);
            }
        })
    };
    for i in 0..6 {
        let t = if i % 2 == 0 { &w.t } else { &w2.t };
        svc.load_db_table("T", dist, t.clone()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    // The final rewrite races the submitter's in-flight queries.
    svc.load_db_table("T", dist, w2.t.clone()).unwrap();
    submitter.join().unwrap();

    // Whatever straggler inserts happened after that last rewrite carried
    // a stale generation and were dropped, so the service must now serve
    // the post-rewrite answer — first from execution, then from cache.
    let expected = run_reference(&w2.t, &w.l, &w.query()).unwrap();
    let first = svc.submit(&req).unwrap();
    assert_eq!(*first.result, expected, "post-rewrite execution answer");
    let second = svc.submit(&req).unwrap();
    assert_eq!(
        *second.result, expected,
        "a cached answer must be post-rewrite"
    );
}

#[test]
fn disabled_caches_always_execute() {
    let cfg = ServiceConfig {
        result_cache_capacity: 0,
        bloom_cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let (svc, w) = service(cfg);
    let req = QueryRequest::new(w.query());
    assert!(!svc.submit(&req).unwrap().from_cache);
    assert!(!svc.submit(&req).unwrap().from_cache);
    let m = svc.metrics();
    assert_eq!(m.get("svc.cache.result.hits"), 0);
    assert_eq!(m.get("svc.cache.result.insertions"), 0);
}
