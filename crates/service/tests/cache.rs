//! Cross-query cache behavior through the service API: hits are
//! bit-identical to cold runs, eviction is LRU-consistent, and table
//! rewrites force re-execution (all asserted via the hit/miss counters).

use hybrid_core::reference::run_reference;
use hybrid_core::{HybridQuery, HybridSystem, JoinAlgorithm, SystemConfig};
use hybrid_datagen::tables::l_cols;
use hybrid_datagen::{Workload, WorkloadSpec};
use hybrid_service::{QueryRequest, QueryService, ServiceConfig};
use hybrid_storage::FileFormat;

fn service(cfg: ServiceConfig) -> (QueryService, Workload) {
    let w = WorkloadSpec::tiny().generate().unwrap();
    let mut syscfg = SystemConfig::paper_shape(2, 3);
    syscfg.rows_per_block = 1000;
    let mut sys = HybridSystem::new(syscfg).unwrap();
    w.load_into(&mut sys, FileFormat::Columnar).unwrap();
    (QueryService::new(sys, cfg), w)
}

/// The workload query with a different HDFS-side correlated threshold —
/// same database side (same `BF_DB`), different result.
fn variant(w: &Workload, l_cor: i64) -> HybridQuery {
    use hybrid_common::expr::Expr;
    let mut q = w.query();
    q.hdfs_pred = Expr::col_le(l_cols::COR_PRED, l_cor)
        .and(Expr::col_le(l_cols::IND_PRED, w.thresholds.l_ind));
    q
}

#[test]
fn result_cache_hit_is_bit_identical_to_cold_run() {
    let (svc, w) = service(ServiceConfig::default());
    let req = QueryRequest::new(w.query());
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();

    let cold = svc.submit(&req).unwrap();
    assert!(!cold.from_cache);
    assert_eq!(*cold.result, expected);
    assert!(cold.snapshot.is_some() && cold.summary.is_some());

    let hit = svc.submit(&req).unwrap();
    assert!(hit.from_cache);
    assert_eq!(*hit.result, expected, "hit must be bit-identical");
    assert_eq!(hit.algorithm, cold.algorithm);
    assert!(hit.snapshot.is_none(), "nothing executed on a hit");

    let m = svc.metrics();
    assert_eq!(m.get("svc.cache.result.hits"), 1);
    assert_eq!(m.get("svc.cache.result.misses"), 1);
    assert_eq!(m.get("svc.completed"), 2);
    assert_eq!(svc.latency_histogram().count(), 2);
}

#[test]
fn result_cache_eviction_is_lru_consistent() {
    let cfg = ServiceConfig {
        result_cache_capacity: 2,
        ..ServiceConfig::default()
    };
    let (svc, w) = service(cfg);
    let th = w.thresholds.l_cor;
    let q1 = QueryRequest::new(variant(&w, th));
    let q2 = QueryRequest::new(variant(&w, th - 1));
    let q3 = QueryRequest::new(variant(&w, th - 2));
    let m = svc.metrics().clone();

    svc.submit(&q1).unwrap();
    svc.submit(&q2).unwrap();
    assert_eq!(m.get("svc.cache.result.evictions"), 0);
    svc.submit(&q3).unwrap(); // capacity 2: q1 is the LRU victim
    assert_eq!(m.get("svc.cache.result.evictions"), 1);

    assert!(svc.submit(&q3).unwrap().from_cache, "q3 is resident");
    assert!(svc.submit(&q2).unwrap().from_cache, "q2 is resident");
    let r1 = svc.submit(&q1).unwrap();
    assert!(!r1.from_cache, "evicted entry must re-execute");
    // re-inserting q1 evicts the then-LRU entry (q3)
    assert_eq!(m.get("svc.cache.result.evictions"), 2);
    assert!(!svc.submit(&q3).unwrap().from_cache);
    // every re-execution still returns the exact answer
    assert_eq!(*r1.result, run_reference(&w.t, &w.l, &q1.query).unwrap());
}

#[test]
fn bloom_cache_shared_across_distinct_queries() {
    let (svc, w) = service(ServiceConfig::default());
    let alg = JoinAlgorithm::Repartition { bloom: true };
    let th = w.thresholds.l_cor;
    let q1 = QueryRequest::with_algorithm(variant(&w, th), alg);
    let q2 = QueryRequest::with_algorithm(variant(&w, th - 1), alg);

    let r1 = svc.submit(&q1).unwrap();
    let m = svc.metrics();
    assert_eq!(m.get("svc.cache.bloom.misses"), 1);
    assert_eq!(m.get("svc.cache.bloom.insertions"), 1);

    let r2 = svc.submit(&q2).unwrap();
    assert!(!r2.from_cache, "different query: not a result-cache hit");
    assert_eq!(
        m.get("svc.cache.bloom.hits"),
        1,
        "same database side: BF_DB must be reused"
    );
    assert_eq!(*r1.result, run_reference(&w.t, &w.l, &q1.query).unwrap());
    assert_eq!(*r2.result, run_reference(&w.t, &w.l, &q2.query).unwrap());
}

#[test]
fn table_rewrite_invalidates_both_caches_and_forces_reexecution() {
    let (svc, w) = service(ServiceConfig::default());
    let alg = JoinAlgorithm::Repartition { bloom: true };
    let req = QueryRequest::with_algorithm(w.query(), alg);
    let expected = run_reference(&w.t, &w.l, &w.query()).unwrap();

    svc.submit(&req).unwrap();
    assert!(svc.submit(&req).unwrap().from_cache);

    // Rewrite T (same data): every cached artifact over T is stale.
    svc.load_db_table("T", hybrid_datagen::tables::t_cols::UNIQ_KEY, w.t.clone())
        .unwrap();
    let m = svc.metrics();
    assert!(m.get("svc.cache.result.invalidations") >= 1);
    assert!(m.get("svc.cache.bloom.invalidations") >= 1);

    let after = svc.submit(&req).unwrap();
    assert!(!after.from_cache, "invalidation must force re-execution");
    assert_eq!(m.get("svc.cache.result.misses"), 2);
    assert_eq!(
        m.get("svc.cache.bloom.misses"),
        2,
        "BF_DB rebuilt after rewrite"
    );
    assert_eq!(*after.result, expected, "same data: same answer");
}

#[test]
fn hdfs_rewrite_invalidates_results_but_keeps_bloom() {
    let (svc, w) = service(ServiceConfig::default());
    let alg = JoinAlgorithm::Repartition { bloom: true };
    let req = QueryRequest::with_algorithm(w.query(), alg);

    svc.submit(&req).unwrap();
    svc.load_hdfs_table(
        "L",
        FileFormat::Columnar,
        hybrid_datagen::tables::l_schema(),
        &w.l,
    )
    .unwrap();
    let m = svc.metrics();
    assert!(m.get("svc.cache.result.invalidations") >= 1);
    assert_eq!(
        m.get("svc.cache.bloom.invalidations"),
        0,
        "BF_DB only depends on the database table"
    );
    let after = svc.submit(&req).unwrap();
    assert!(!after.from_cache);
    assert_eq!(
        m.get("svc.cache.bloom.hits"),
        1,
        "filter survives an L rewrite"
    );
}

#[test]
fn disabled_caches_always_execute() {
    let cfg = ServiceConfig {
        result_cache_capacity: 0,
        bloom_cache_capacity: 0,
        ..ServiceConfig::default()
    };
    let (svc, w) = service(cfg);
    let req = QueryRequest::new(w.query());
    assert!(!svc.submit(&req).unwrap().from_cache);
    assert!(!svc.submit(&req).unwrap().from_cache);
    let m = svc.metrics();
    assert_eq!(m.get("svc.cache.result.hits"), 0);
    assert_eq!(m.get("svc.cache.result.insertions"), 0);
}
